"""Measurement harness for the anytime runtime's overhead.

Two questions, answered on the PR-1 vertical workloads:

* **Checkpoint + harness overhead** — running a solver through
  :class:`repro.runtime.SolverHarness` with a live (but generous)
  deadline activates every cooperative ticker in the inner loops; the
  acceptance bar is < 5% versus the bare solver, whose tickers are the
  no-op :data:`~repro.common.deadline.NULL_TICKER`.
* **Deadline responsiveness** — with a 50 ms deadline on an instance
  where the pure-Python ILP needs minutes, the harness must return a
  valid outcome within a small multiple of the deadline (one grace
  window for the terminal fallback bounds it near 2x).

Used by ``test_bench_runtime.py`` (records ``BENCH_runtime.json``) and
``check_regression.py`` (re-runs and gates).  Seeded and fixed-size like
the vertical suite.
"""

from __future__ import annotations

import random
import statistics
import time

from vertical_workload import LARGE_LOG, SEED, SMALL_LOG, fresh_problem

from repro.booldata import BooleanTable, Schema
from repro.core import VisibilityProblem, make_solver
from repro.runtime import SolverHarness

#: deadline long enough to never fire — the tickers still run, which is
#: exactly the cost being measured
IDLE_DEADLINE_MS = 600_000.0
REPEATS = 7
RESPONSIVENESS_DEADLINE_MS = 50.0


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def measure_overhead(
    algorithm: str,
    size: int,
    tuple_size: int | None = None,
    budget: int | None = None,
    repeats: int = REPEATS,
) -> dict:
    """Bare solver vs harness-with-live-deadline, median of ``repeats``.

    The two sides are interleaved (and the order alternated) within each
    repeat, so slow drift in machine load lands on both equally instead
    of masquerading as harness overhead.
    """
    kwargs = {}
    if tuple_size is not None:
        kwargs["tuple_size"] = tuple_size
    if budget is not None:
        kwargs["budget"] = budget
    solver = make_solver(algorithm, engine="vertical")
    harness = SolverHarness(
        [algorithm], engine="vertical", deadline_ms=IDLE_DEADLINE_MS
    )

    bare_timings, harness_timings = [], []
    for repeat in range(repeats):
        sides = [
            (bare_timings, lambda: solver.solve(fresh_problem(size, **kwargs))),
            (harness_timings, lambda: harness.run(fresh_problem(size, **kwargs))),
        ]
        if repeat % 2:
            sides.reverse()
        for timings, run in sides:
            timings.append(_timed(run))

    bare_s = statistics.median(bare_timings)
    harness_s = statistics.median(harness_timings)
    overhead_s = harness_s - bare_s
    return {
        "algorithm": algorithm,
        "log_size": size,
        "repeats": repeats,
        "bare_s": round(bare_s, 6),
        "harness_s": round(harness_s, 6),
        "overhead_s": round(overhead_s, 6),
        "overhead_pct": round(100.0 * overhead_s / bare_s, 2) if bare_s else 0.0,
    }


def hard_ilp_problem() -> VisibilityProblem:
    """An instance where the pure-Python ILP branch-and-bound needs far
    longer than any serving deadline."""
    rng = random.Random(SEED + 3)
    width = 10
    schema = Schema.anonymous(width)
    log = BooleanTable(schema, [rng.getrandbits(width) or 1 for _ in range(200)])
    return VisibilityProblem(log, (1 << width) - 1, 4)


def measure_responsiveness(deadline_ms: float = RESPONSIVENESS_DEADLINE_MS) -> dict:
    """Wall clock of a deadline-bounded run through the default chain."""
    problem = hard_ilp_problem()
    harness = SolverHarness(deadline_ms=deadline_ms)
    start = time.perf_counter()
    outcome = harness.run(problem)
    elapsed_s = time.perf_counter() - start
    return {
        "workload": "deadline_responsiveness",
        "deadline_ms": deadline_ms,
        "elapsed_s": round(elapsed_s, 6),
        "overrun_factor": round(elapsed_s / (deadline_ms / 1000.0), 2),
        "status": outcome.status,
        "objective": outcome.solution.satisfied if outcome.solution else None,
        "attempts": [a.solver + ":" + a.status for a in outcome.attempts],
    }


#: name -> zero-argument measurement, the recorded runtime suite
MEASUREMENTS = {
    "harness_consume_attr_cumul_100k": lambda: measure_overhead(
        "ConsumeAttrCumul", LARGE_LOG
    ),
    "harness_coverage_greedy_20k": lambda: measure_overhead(
        "CoverageGreedy", SMALL_LOG
    ),
    # a narrower tuple keeps C(pool, m) enumerable (as in the vertical suite)
    "harness_brute_force_20k": lambda: measure_overhead(
        "BruteForce", SMALL_LOG, tuple_size=18, budget=6
    ),
    "deadline_responsiveness_50ms": measure_responsiveness,
}


def run_suite() -> dict:
    return {name: measure() for name, measure in MEASUREMENTS.items()}


def suite_meta() -> dict:
    return {
        "seed": SEED,
        "repeats": REPEATS,
        "idle_deadline_ms": IDLE_DEADLINE_MS,
        "responsiveness_deadline_ms": RESPONSIVENESS_DEADLINE_MS,
    }
