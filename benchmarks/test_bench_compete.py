"""Benchmark: the competitive best-response game at gate scale.

Records ``BENCH_compete.json`` at the repo root (the baseline that
``check_regression.py`` guards).  The acceptance bars of the compete PR:

* the seeded sequential game converges to a best-response fixed point
  (or reports a cycle — this seed converges) and its price of anarchy /
  stability are well-defined and >= 1;
* the simultaneous schedule at ``jobs=2`` replays the ``jobs=1``
  trajectory bit-for-bit.

Run explicitly (the tier-1 suite does not collect ``benchmarks/``)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_compete.py -s
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

from compete_workload import run_suite, suite_meta
from repro.common.fsio import atomic_write_text

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_compete.json"


def test_compete_game_and_equivalence():
    results = run_suite()

    game = results["sequential_game_3x400"]
    assert game["converged"] or game["cycle"] is not None, (
        "the seeded game neither converged nor detected a cycle"
    )
    assert game["converged"], "this seed is expected to reach a fixed point"
    assert game["price_of_anarchy"] is not None
    assert game["price_of_anarchy"] >= 1.0
    assert 1.0 <= game["price_of_stability"] <= game["price_of_anarchy"]
    assert game["cooperative_welfare"] >= game["final_welfare"]

    equivalence = results["simultaneous_jobs_equivalence"]
    assert equivalence["trajectories_match"], (
        "jobs=2 produced a different trajectory than jobs=1"
    )

    payload = {
        "meta": {**suite_meta(), "python": platform.python_version()},
        "results": results,
    }
    atomic_write_text(BASELINE_PATH, json.dumps(payload, indent=2) + "\n")
    print(
        f"sequential_game_3x400: {game['rounds']} rounds in "
        f"{game['game_s']:.2f}s (round median {game['round_s'] * 1000:.0f} ms), "
        f"welfare {game['final_welfare']:.0f}, "
        f"PoA {game['price_of_anarchy']:.3f} PoS {game['price_of_stability']:.3f}"
    )
    print(
        f"simultaneous_jobs_equivalence: jobs1 {equivalence['jobs1_s']:.2f}s "
        f"jobs2 {equivalence['jobs2_s']:.2f}s, trajectories "
        f"{'match' if equivalence['trajectories_match'] else 'DIVERGED'}"
    )
