"""Fig 7: satisfied queries vs m on the real workload.

Quality is attached as ``extra_info['satisfied']`` on each benchmark
case; the shape assertions encode the figure's findings: the greedies
never beat the optimal, ConsumeAttr/-Cumul are near-optimal, and m=3
satisfies nothing (every real query has more than 3 attributes).
"""

import pytest

from repro.core import make_solver

from conftest import problem_for

SERIES = ["MaxFreqItemSets", "ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries"]
BUDGETS = [3, 4, 5, 6, 7]


@pytest.mark.parametrize("m", BUDGETS)
@pytest.mark.parametrize("algorithm", SERIES)
def test_fig7_quality(benchmark, algorithm, m, real_log, new_car):
    problem = problem_for(real_log, new_car, m)

    def solve():
        return make_solver(algorithm).solve(problem)

    solution = benchmark.pedantic(solve, rounds=2, iterations=1)
    benchmark.extra_info["satisfied"] = solution.satisfied
    benchmark.extra_info["figure"] = "fig7"

    optimum = make_solver("MaxFreqItemSets").solve(problem).satisfied
    assert solution.satisfied <= optimum
    if m == 3:
        assert solution.satisfied == 0  # paper: all real queries have > 3 attrs


def test_fig7_greedy_near_optimality(real_log, new_car):
    """Aggregate check: ConsumeAttr reaches most of the optimal quality
    over the m sweep, ConsumeQueries is the weakest greedy overall."""
    totals = {name: 0 for name in SERIES}
    for m in BUDGETS:
        problem = problem_for(real_log, new_car, m)
        for name in SERIES:
            totals[name] += make_solver(name).solve(problem).satisfied
    assert totals["ConsumeAttr"] >= 0.5 * totals["MaxFreqItemSets"]
    assert totals["ConsumeQueries"] <= totals["MaxFreqItemSets"]
