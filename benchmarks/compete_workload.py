"""Measurement harness for the competitive best-response game.

Two questions, at a scale the gate can re-run in seconds:

* **Sequential dynamics** — a seeded multi-seller game played to its
  verdict: rounds to convergence, per-round latency, the equilibrium
  welfare, and the price of anarchy / stability against the cooperative
  bound.  The welfare and the ratios are pure functions of the seed, so
  the gate treats them as drift checksums.
* **Simultaneous fan-out** — the same game under the simultaneous
  schedule at ``jobs=1`` (inline) and ``jobs=2`` (forked worker pool);
  the trajectories must be bit-identical, per the engine's determinism
  contract, and both sides' round latencies are recorded.

Games run the cheap exact chain (``MaxFreqItemSets`` primary): it
returns the same exact best responses as the ILP-first default on these
widths at a fraction of the cost, keeping the suite fast and the
checksums deterministic.

Used by ``test_bench_compete.py`` (records ``BENCH_compete.json``) and
``check_regression.py`` (re-runs and gates; ``--skip-compete`` opts
out).
"""

from __future__ import annotations

import statistics
import time

from repro.compete import CompeteConfig, analyze_equilibria, make_scenario, play

SEED = 42
WIDTH = 12
SELLERS = 3
TRAFFIC = 400
BUDGET = 4
MAX_ROUNDS = 15
CHAIN = ("MaxFreqItemSets", "ConsumeAttrCumul")


def measure_sequential_game(
    width: int = WIDTH,
    sellers: int = SELLERS,
    traffic: int = TRAFFIC,
    max_rounds: int = MAX_ROUNDS,
) -> dict:
    """One seeded sequential game plus its equilibrium analytics."""
    scenario = make_scenario(width, sellers, traffic, seed=SEED, budget=BUDGET)
    config = CompeteConfig(
        schedule="sequential", max_rounds=max_rounds, chain=CHAIN
    )
    start = time.perf_counter()
    result = play(scenario.sellers, scenario.traffic, config)
    game_s = time.perf_counter() - start
    start = time.perf_counter()
    report = analyze_equilibria(scenario.sellers, scenario.traffic, config)
    analytics_s = time.perf_counter() - start
    return {
        "workload": "sequential_game",
        "width": width,
        "sellers": sellers,
        "traffic": traffic,
        "rounds": len(result.rounds),
        "converged": result.converged,
        "cycle": result.cycle,
        "final_welfare": result.final.welfare,
        "best_welfare": result.best_known.welfare,
        "cooperative_welfare": report.cooperative_welfare,
        "price_of_anarchy": (
            None if report.price_of_anarchy is None
            else round(report.price_of_anarchy, 6)
        ),
        "price_of_stability": (
            None if report.price_of_stability is None
            else round(report.price_of_stability, 6)
        ),
        "game_s": round(game_s, 6),
        "round_s": round(
            statistics.median(r.elapsed_s for r in result.rounds), 6
        ),
        "analytics_s": round(analytics_s, 6),
    }


def measure_simultaneous_equivalence(
    width: int = WIDTH,
    sellers: int = SELLERS,
    traffic: int = TRAFFIC,
    max_rounds: int = 8,
) -> dict:
    """jobs=1 vs jobs=2 simultaneous schedules: identical trajectories."""
    scenario = make_scenario(width, sellers, traffic, seed=SEED, budget=BUDGET)

    def side(jobs: int):
        config = CompeteConfig(
            schedule="simultaneous", max_rounds=max_rounds,
            jobs=jobs, chain=CHAIN,
        )
        start = time.perf_counter()
        result = play(scenario.sellers, scenario.traffic, config)
        return result, time.perf_counter() - start

    inline, inline_s = side(1)
    forked, forked_s = side(2)
    trajectories_match = (
        [r.masks for r in inline.rounds] == [r.masks for r in forked.rounds]
        and [r.payoffs for r in inline.rounds] == [r.payoffs for r in forked.rounds]
    )
    return {
        "workload": "simultaneous_equivalence",
        "width": width,
        "sellers": sellers,
        "traffic": traffic,
        "rounds": len(inline.rounds),
        "converged": inline.converged,
        "final_welfare": inline.final.welfare,
        "trajectories_match": trajectories_match,
        "jobs1_s": round(inline_s, 6),
        "jobs2_s": round(forked_s, 6),
        "jobs1_round_s": round(
            statistics.median(r.elapsed_s for r in inline.rounds), 6
        ),
    }


#: name -> zero-argument measurement, the recorded competitive suite
MEASUREMENTS = {
    "sequential_game_3x400": measure_sequential_game,
    "simultaneous_jobs_equivalence": measure_simultaneous_equivalence,
}


def run_suite() -> dict:
    return {name: measure() for name, measure in MEASUREMENTS.items()}


def suite_meta() -> dict:
    return {
        "seed": SEED,
        "width": WIDTH,
        "sellers": SELLERS,
        "traffic": TRAFFIC,
        "budget": BUDGET,
        "max_rounds": MAX_ROUNDS,
        "chain": list(CHAIN),
    }
