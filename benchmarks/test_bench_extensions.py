"""Benchmarks for the extension subsystems (not paper figures).

Weighted deduplication, the marketplace simulator's replay throughput,
and the closed-itemset miner — performance baselines for the extension
layer documented in DESIGN.md section 3b.
"""

import pytest

from repro.core import MaxFreqItemsetsSolver, VisibilityProblem
from repro.core.weighted import deduplicated_problem, solve_weighted_itemsets
from repro.mining import TransactionDatabase
from repro.mining.closed import mine_closed_dfs
from repro.simulate import Marketplace


def test_weighted_dedup_solve(benchmark, synth_log, new_car):
    problem = VisibilityProblem(synth_log, new_car, 5)
    weighted = deduplicated_problem(problem)

    result = benchmark.pedantic(
        lambda: solve_weighted_itemsets(weighted), rounds=3, iterations=1
    )
    plain = MaxFreqItemsetsSolver().solve(problem)
    assert result.satisfied_weight == plain.satisfied
    benchmark.extra_info["distinct_queries"] = len(weighted.log)


def test_marketplace_replay(benchmark, cars, synth_log):
    market = Marketplace(cars.schema)
    for row in list(cars.table)[:200]:
        market.post_ad(row)

    impressions = benchmark(lambda: market.run_workload(synth_log))
    benchmark.extra_info["total_impressions"] = sum(impressions.values())


def test_closed_mining_on_projected_view(benchmark, projected_view):
    threshold = max(1, projected_view.num_transactions // 3)
    result = benchmark.pedantic(
        lambda: mine_closed_dfs(projected_view, threshold), rounds=2, iterations=1
    )
    benchmark.extra_info["closed_itemsets"] = len(result)
