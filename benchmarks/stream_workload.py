"""Measurement harness for the streaming serving layer.

Two questions, answered at the ISSUE's acceptance scale:

* **Monitor tick latency** — a :class:`repro.simulate.VisibilityMonitor`
  tick (observe one query, re-assess the window) rides the incrementally
  maintained :class:`repro.stream.StreamingLog`; the acceptance bar is a
  >= 5x speedup at a 10k-query window versus the pre-streaming tick,
  which re-materialized the window table (and rebuilt its vertical
  index) on every assessment.  Both sides must report identical
  achievable objectives — the incremental index is bit-for-bit the
  rebuilt one.
* **Solve-cache hit latency** — serving a repeated ``(tuple, budget)``
  request against an unchanged window through
  :class:`repro.stream.SolveCache` versus re-running the solver, with
  identical solutions.

Used by ``test_bench_stream.py`` (records ``BENCH_stream.json``) and
``check_regression.py`` (re-runs and gates).  Seeded and fixed-size like
the vertical suite.
"""

from __future__ import annotations

import random
import statistics
import time
from collections import deque

from vertical_workload import SEED

from repro.booldata import BooleanTable, Schema
from repro.core import VisibilityProblem, make_solver
from repro.core.greedy import ConsumeAttrSolver
from repro.simulate import VisibilityMonitor
from repro.stream import SolveCache, StreamingLog

WIDTH = 32
WINDOW = 10_000  # the ISSUE's acceptance scale
TICKS = 25
REPEATS = 5
BUDGET = 6
CACHE_LOG = 2_000
CACHE_LOOPS = 20


def _traffic(size: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(WIDTH) or 1 for _ in range(size)]


class _RebuildMonitor:
    """The pre-streaming tick, kept as the baseline under measurement:
    a plain deque window whose table — and therefore its vertical index —
    is materialized from scratch on every assessment."""

    def __init__(self, schema: Schema, new_tuple: int, budget: int,
                 window_size: int, rows: list[int]) -> None:
        self.schema = schema
        self.new_tuple = new_tuple
        self.budget = budget
        self.estimator = ConsumeAttrSolver()
        self._window = deque(rows, maxlen=window_size)

    def tick(self, query: int) -> int:
        self._window.append(query)
        problem = VisibilityProblem(
            BooleanTable(self.schema, list(self._window)),
            self.new_tuple,
            self.budget,
        )
        return self.estimator.solve(problem).satisfied


def _stream_tick(monitor: VisibilityMonitor, query: int) -> int:
    monitor.observe(query)
    return monitor.status().achievable


def measure_monitor_tick(
    window: int = WINDOW, ticks: int = TICKS, repeats: int = REPEATS
) -> dict:
    """Median per-tick latency, incremental stream vs full rebuild.

    The two sides are interleaved (and the order alternated) within each
    repeat so machine-load drift lands on both equally.  Each repeat
    starts from a fresh, identically prefilled window; the achievable
    objectives of every tick are summed into a checksum that must match
    across sides.
    """
    schema = Schema.anonymous(WIDTH)
    prefill = _traffic(window, SEED + 5)
    live = _traffic(ticks, SEED + 6)
    new_tuple = schema.full

    def fresh_stream() -> VisibilityMonitor:
        monitor = VisibilityMonitor(
            new_tuple=new_tuple,
            keep_mask=0,
            budget=BUDGET,
            schema=schema,
            window_size=window,
        )
        for query in prefill:
            monitor.observe(query)
        return monitor

    def fresh_rebuild() -> _RebuildMonitor:
        return _RebuildMonitor(schema, new_tuple, BUDGET, window, prefill)

    def run_side(tick) -> tuple[float, int]:
        checksum = 0
        start = time.perf_counter()
        for query in live:
            checksum += tick(query)
        return time.perf_counter() - start, checksum

    stream_timings, rebuild_timings = [], []
    checksums = set()
    for repeat in range(repeats):
        sides = [
            (stream_timings,
             lambda: run_side(lambda q, m=fresh_stream(): _stream_tick(m, q))),
            (rebuild_timings,
             lambda: run_side(lambda q, m=fresh_rebuild(): m.tick(q))),
        ]
        if repeat % 2:
            sides.reverse()
        for timings, run in sides:
            elapsed, checksum = run()
            timings.append(elapsed / ticks)
            checksums.add(checksum)

    stream_s = statistics.median(stream_timings)
    rebuild_s = statistics.median(rebuild_timings)
    return {
        "workload": "monitor_tick",
        "window": window,
        "ticks": ticks,
        "repeats": repeats,
        "stream_tick_s": round(stream_s, 6),
        "rebuild_tick_s": round(rebuild_s, 6),
        "speedup": round(rebuild_s / stream_s, 2) if stream_s else 0.0,
        "objective_checksum": checksums.pop() if len(checksums) == 1 else None,
    }


def measure_cache_hit(
    size: int = CACHE_LOG, loops: int = CACHE_LOOPS, repeats: int = REPEATS
) -> dict:
    """Cache-hit latency vs an uncached solve at the same epoch."""
    schema = Schema.anonymous(WIDTH)
    log = StreamingLog(schema, rows=_traffic(size, SEED + 7))
    solver = make_solver("ConsumeAttrCumul", engine="vertical")
    cache = SolveCache(log, capacity=8)
    new_tuple = schema.full
    cached = cache.solve(new_tuple, BUDGET, solver)  # prime the entry
    uncached = solver.solve(VisibilityProblem.from_stream(log, new_tuple, BUDGET))

    def hit_side() -> float:
        start = time.perf_counter()
        for _ in range(loops):
            cache.solve(new_tuple, BUDGET, solver)
        return (time.perf_counter() - start) / loops

    def solve_side() -> float:
        start = time.perf_counter()
        for _ in range(loops):
            solver.solve(VisibilityProblem.from_stream(log, new_tuple, BUDGET))
        return (time.perf_counter() - start) / loops

    hit_timings, solve_timings = [], []
    for repeat in range(repeats):
        sides = [(hit_timings, hit_side), (solve_timings, solve_side)]
        if repeat % 2:
            sides.reverse()
        for timings, run in sides:
            timings.append(run())

    hit_s = statistics.median(hit_timings)
    solve_s = statistics.median(solve_timings)
    return {
        "workload": "cache_hit",
        "log_size": size,
        "loops": loops,
        "repeats": repeats,
        "hit_s": round(hit_s, 9),
        "solve_s": round(solve_s, 6),
        "speedup": round(solve_s / hit_s, 2) if hit_s else 0.0,
        "objective": cached.satisfied,
        "solutions_match": (
            cached.keep_mask == uncached.keep_mask
            and cached.satisfied == uncached.satisfied
        ),
    }


#: name -> zero-argument measurement, the recorded streaming suite
MEASUREMENTS = {
    "monitor_tick_window_10k": measure_monitor_tick,
    "solve_cache_hit_2k": measure_cache_hit,
}


def run_suite() -> dict:
    return {name: measure() for name, measure in MEASUREMENTS.items()}


def suite_meta() -> dict:
    return {
        "seed": SEED,
        "width": WIDTH,
        "window": WINDOW,
        "ticks": TICKS,
        "repeats": REPEATS,
        "budget": BUDGET,
    }
