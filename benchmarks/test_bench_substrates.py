"""Microbenchmarks of the substrates the figures are built from.

Not figures of the paper — these isolate the primitive costs (support
counting, maximal mining, simplex pivots, retrieval) so regressions in a
substrate are visible before they blur a figure.
"""

import random

import numpy as np
import pytest

from repro.lp.simplex import SimplexSolver
from repro.mining import TransactionDatabase, mine_maximal_dfs
from repro.mining.randomwalk import TwoPhaseRandomWalkMiner
from repro.retrieval import BooleanRetrievalEngine


@pytest.fixture(scope="module")
def transactions(synth_log):
    return TransactionDatabase.from_boolean_table(synth_log)


def test_support_counting(benchmark, transactions):
    itemsets = [random.Random(0).getrandbits(32) for _ in range(200)]

    def count_all():
        return [transactions.support(itemset) for itemset in itemsets]

    benchmark(count_all)


def test_complemented_support_counting(benchmark, transactions):
    view = transactions.complement()
    itemsets = [random.Random(1).getrandbits(32) for _ in range(200)]

    def count_all():
        return [view.support(itemset) for itemset in itemsets]

    benchmark(count_all)


def test_maximal_dfs_mining(benchmark, projected_view):
    threshold = max(1, projected_view.num_transactions // 4)
    result = benchmark.pedantic(
        lambda: mine_maximal_dfs(projected_view, threshold), rounds=3, iterations=1
    )
    benchmark.extra_info["mfis"] = len(result)


def test_two_phase_walk_single_iteration(benchmark, projected_view):
    threshold = max(1, projected_view.num_transactions // 4)

    def walk_once():
        miner = TwoPhaseRandomWalkMiner(threshold, seed=0, max_iterations=1)
        return miner.mine(projected_view)

    benchmark(walk_once)


def test_simplex_medium_lp(benchmark):
    rng = np.random.default_rng(5)
    n, m = 40, 60
    c = rng.normal(size=n)
    a_ub = rng.normal(size=(m, n))
    b_ub = np.abs(rng.normal(size=m)) + 1.0

    def solve():
        return SimplexSolver().solve(
            c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0),
            np.zeros(n), np.ones(n),
        )

    solution = benchmark(solve)
    benchmark.extra_info["iterations"] = solution.iterations


def test_conjunctive_retrieval(benchmark, cars, synth_log):
    engine = BooleanRetrievalEngine(cars.table)

    def run_log():
        return sum(engine.conjunctive_count(query) for query in synth_log)

    total = benchmark(run_log)
    benchmark.extra_info["total_matches"] = total
