"""Shared A/B measurement harness for the vertical bitmap index.

Used by two entry points:

* ``test_bench_vertical_index.py`` — records naive-vs-vertical timings
  for the hot paths into ``BENCH_vertical.json`` (repo root);
* ``check_regression.py`` — re-runs the *vertical* side only and fails
  if timings regressed more than 2x against the recorded baseline.

Everything is seeded and fixed-size so recorded numbers are comparable
across runs on the same machine class.
"""

from __future__ import annotations

import random
import time

from repro.booldata import BooleanTable, Schema
from repro.common.bits import random_mask
from repro.core import VisibilityProblem, make_solver
from repro.data import synthetic_workload

SEED = 20080406  # the paper's conference date
WIDTH = 64
TUPLE_SIZE = 56  # dense tuple => most queries satisfiable, worst case for scans
BUDGET = 10
LARGE_LOG = 100_000  # the ISSUE's acceptance scale
SMALL_LOG = 20_000  # secondary series, keeps the naive side affordable
EVAL_CANDIDATES = 200

_LOG_CACHE: dict[int, BooleanTable] = {}


def _log_rows(size: int) -> BooleanTable:
    if size not in _LOG_CACHE:
        _LOG_CACHE[size] = synthetic_workload(
            Schema.anonymous(WIDTH), size, seed=SEED
        )
    return _LOG_CACHE[size]


def fresh_problem(
    size: int, tuple_size: int = TUPLE_SIZE, budget: int = BUDGET
) -> VisibilityProblem:
    """A problem over a *fresh* table so no cached index leaks between
    engine runs (the generated rows themselves are cached)."""
    log = _log_rows(size)
    table = BooleanTable(log.schema, list(log))
    new_tuple = random_mask(WIDTH, tuple_size, random.Random(SEED + 1))
    return VisibilityProblem(table, new_tuple, budget)


def _candidate_masks(problem: VisibilityProblem) -> list[int]:
    """Seeded random budget-sized keep-masks (the brute-force evaluation
    workload: score many candidate compressions against the full log)."""
    rng = random.Random(SEED + 2)
    attributes = [
        attribute
        for attribute in range(WIDTH)
        if problem.new_tuple >> attribute & 1
    ]
    masks = []
    for _ in range(EVAL_CANDIDATES):
        keep = 0
        for attribute in rng.sample(attributes, problem.budget):
            keep |= 1 << attribute
        masks.append(keep)
    return masks


def measure_solver(
    algorithm: str,
    size: int,
    engines: tuple[str, ...] = ("naive", "vertical"),
    tuple_size: int = TUPLE_SIZE,
    budget: int = BUDGET,
) -> dict:
    """Time one solver end-to-end (index construction included) per engine."""
    result: dict = {"algorithm": algorithm, "log_size": size, "budget": budget}
    objectives = {}
    for engine in engines:
        problem = fresh_problem(size, tuple_size, budget)
        solver = make_solver(algorithm, engine=engine)
        start = time.perf_counter()
        solution = solver.solve(problem)
        result[f"{engine}_s"] = round(time.perf_counter() - start, 6)
        objectives[engine] = solution.satisfied
    result["objective"] = objectives[engines[-1]]
    if len(engines) == 2:
        result["objectives_match"] = objectives["naive"] == objectives["vertical"]
        result["speedup"] = round(result["naive_s"] / result["vertical_s"], 2)
    return result


def measure_objective_evaluation(
    size: int, engines: tuple[str, ...] = ("naive", "vertical")
) -> dict:
    """Time brute-force objective evaluation of many candidate masks.

    Naive: one row-major log scan per candidate (``problem.evaluate`` on
    a cold table).  Vertical: ``problem.evaluate_many`` — index built
    once inside the timed region, then one wide expression per candidate.
    """
    result: dict = {
        "workload": "objective_evaluation",
        "log_size": size,
        "candidates": EVAL_CANDIDATES,
    }
    checksums = {}
    for engine in engines:
        problem = fresh_problem(size)
        masks = _candidate_masks(problem)
        start = time.perf_counter()
        if engine == "vertical":
            values = problem.evaluate_many(masks)
        else:
            values = [problem.evaluate(mask) for mask in masks]
        result[f"{engine}_s"] = round(time.perf_counter() - start, 6)
        checksums[engine] = sum(values)
    result["objective_checksum"] = checksums[engines[-1]]
    if len(engines) == 2:
        result["values_match"] = checksums["naive"] == checksums["vertical"]
        result["speedup"] = round(result["naive_s"] / result["vertical_s"], 2)
    return result


#: name -> zero-argument measurement, the recorded benchmark suite
MEASUREMENTS = {
    "consume_attr_cumul_100k": lambda engines=("naive", "vertical"): measure_solver(
        "ConsumeAttrCumul", LARGE_LOG, engines
    ),
    "objective_eval_100k": lambda engines=("naive", "vertical"): (
        measure_objective_evaluation(LARGE_LOG, engines)
    ),
    "coverage_greedy_20k": lambda engines=("naive", "vertical"): measure_solver(
        "CoverageGreedy", SMALL_LOG, engines
    ),
    "consume_queries_20k": lambda engines=("naive", "vertical"): measure_solver(
        "ConsumeQueries", SMALL_LOG, engines
    ),
    # a narrower tuple keeps C(pool, m) enumerable for both engines
    "brute_force_20k": lambda engines=("naive", "vertical"): measure_solver(
        "BruteForce", SMALL_LOG, engines, tuple_size=18, budget=6
    ),
}


def run_suite(engines: tuple[str, ...] = ("naive", "vertical")) -> dict:
    return {name: measure(engines) for name, measure in MEASUREMENTS.items()}


def suite_meta() -> dict:
    return {
        "seed": SEED,
        "width": WIDTH,
        "tuple_size": TUPLE_SIZE,
        "budget": BUDGET,
        "large_log": LARGE_LOG,
        "small_log": SMALL_LOG,
        "eval_candidates": EVAL_CANDIDATES,
    }
