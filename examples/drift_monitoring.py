"""Monitoring ad visibility as buyer interest drifts.

A seller optimizes an ad against spring traffic; over the following
months buyer interest drifts toward winter features (four-wheel drive,
defrosters).  The VisibilityMonitor watches a sliding window of live
queries, compares realized visibility against what a re-optimized ad
would achieve, and raises the flag when the gap crosses the tolerance —
at which point the seller re-optimizes in place.

Run:  python examples/drift_monitoring.py
"""

from repro import MaxFreqItemsetsSolver, VisibilityProblem
from repro.data import generate_cars, synthetic_workload
from repro.data.drift import drifting_workload, interest_profile
from repro.simulate import VisibilityMonitor


def main() -> None:
    cars = generate_cars(2_000, seed=71)
    schema = cars.schema
    car = max(cars.table, key=int.bit_count)  # a feature-rich car

    spring = interest_profile(
        schema, ["ac", "sunroof", "cruise_control"], boost=8.0, base=0.2
    )
    winter = interest_profile(
        schema, ["four_wheel_drive", "rear_defroster", "abs"], boost=8.0, base=0.2
    )

    history = synthetic_workload(schema, 400, seed=72, attribute_weights=spring)
    live_traffic = drifting_workload(schema, 400, spring, winter, seed=73)

    solver = MaxFreqItemsetsSolver()
    spring_ad = solver.solve(VisibilityProblem(history, car, 5))
    print(f"spring-optimized ad: {spring_ad.kept_attributes}")
    print(f"  satisfies {spring_ad.satisfied} of {len(history)} spring queries\n")

    monitor = VisibilityMonitor(
        new_tuple=car,
        keep_mask=spring_ad.keep_mask,
        budget=5,
        schema=schema,
        window_size=120,
        tolerance=0.7,
    )

    print("streaming drifting traffic through the monitor...")
    queries = list(live_traffic)
    for checkpoint in range(4):
        for query in queries[checkpoint * 100 : (checkpoint + 1) * 100]:
            monitor.observe(query)
        status = monitor.status()
        flag = "  << RE-OPTIMIZE" if status.should_reoptimize else ""
        print(
            f"  after {100 * (checkpoint + 1)} queries: realized "
            f"{status.realized}/{status.achievable} achievable "
            f"({status.realized_share:.0%}){flag}"
        )
        if status.should_reoptimize:
            new_mask = monitor.reoptimize(solver)
            print(f"  re-optimized ad: {schema.names_of(new_mask)}")
            after = monitor.status()
            # 'achievable' is the monitor's fast greedy lower bound, so an
            # exactly re-optimized ad can realize slightly more than it
            print(
                f"  now realizing {after.realized} vs the greedy bound of "
                f"{after.achievable} ({after.realized_share:.0%})"
            )
            break


if __name__ == "__main__":
    main()
