"""Numeric variant: which camera specs to put in the listing headline.

Buyers browse a camera catalog with *range* filters (price between $200
and $400, at least 20 megapixels, ...).  Section V reduces this to the
Boolean problem: each range condition either contains the new camera's
value or it never can.  This example lists a new camera and asks which
specs to surface so the most saved searches would match it.

Run:  python examples/camera_catalog_numeric.py
"""

from repro import IlpSolver, MaxFreqItemsetsSolver
from repro.data import generate_numeric
from repro.variants import solve_numeric
from repro.variants.numeric import reduce_numeric_to_boolean

NEW_CAMERA = {
    "price": 540.0,
    "weight_g": 420.0,
    "megapixels": 24.0,
    "optical_zoom": 8.0,
    "screen_inches": 3.0,
    "battery_shots": 600.0,
}


def main() -> None:
    dataset = generate_numeric(rows=400, queries=150, seed=23)
    print(
        f"catalog: {len(dataset.rows)} cameras, "
        f"workload: {len(dataset.query_log)} saved range searches"
    )
    print(f"new camera: {NEW_CAMERA}\n")

    # How many searches could the full spec sheet ever satisfy?
    log, tuple_mask, _ = reduce_numeric_to_boolean(
        dataset.attributes, dataset.query_log, NEW_CAMERA
    )
    fully_matchable = sum(1 for query in log if query & tuple_mask == query)
    print(f"searches the full spec sheet matches: {fully_matchable}\n")

    for budget in (2, 3, 4):
        exact = solve_numeric(MaxFreqItemsetsSolver(), dataset, NEW_CAMERA, budget)
        ilp = solve_numeric(IlpSolver(backend="native"), dataset, NEW_CAMERA, budget)
        assert exact.satisfied == ilp.satisfied  # two exact algorithms agree
        print(f"headline budget = {budget} specs")
        print(f"  show {exact.kept}")
        print(f"  -> matches {exact.satisfied} saved searches\n")


if __name__ == "__main__":
    main()
