"""SOC-CB-D and SOC-Topk: designing a product against the competition.

Two scenarios from the paper beyond the main query-log variant:

1. **SOC-CB-D** — a homebuilder-style question: with no query log
   available, which m features make the new product *dominate* the most
   competing products already on the market?

2. **SOC-Topk** — buyers see only the top-k results, ranked by a global
   scoring function (here: number of listed features).  Which features
   keep the new product inside the top-k for the most searches?

Run:  python examples/product_design_cbd.py
"""

import random

from repro import MaxFreqItemsetsSolver, VisibilityProblem, solve_cbd, solve_topk
from repro.booldata import BooleanTable
from repro.common.bits import bit_indices, from_indices
from repro.data import generate_cars, synthetic_workload
from repro.retrieval import AttributeCountScore
from repro.variants import TopkVisibilityProblem


def advertised_versions(cars, max_listed: int, seed: int) -> BooleanTable:
    """Competitors also advertise compressed tuples: each rival ad lists at
    most ``max_listed`` of the car's features (chosen arbitrarily here —
    we are the only seller using the paper's algorithm)."""
    rng = random.Random(seed)
    ads = []
    for row in cars.table:
        features = bit_indices(row)
        listed = rng.sample(features, min(max_listed, len(features)))
        ads.append(from_indices(listed))
    return BooleanTable(cars.schema, ads)


def main() -> None:
    cars = generate_cars(3_000, seed=5)
    ads = advertised_versions(cars, max_listed=7, seed=9)
    solver = MaxFreqItemsetsSolver()

    # --- SOC-CB-D: dominate the competing ads -----------------------------
    new_car = cars.table[123]
    print(f"SOC-CB-D: against {len(ads)} competing classified ads (<=7 features each)")
    for budget in (4, 6, 8):
        solution = solve_cbd(solver, ads, new_car, budget)
        print(
            f"  m={budget}: advertise {solution.kept_attributes} "
            f"-> dominates {solution.satisfied} competing ads"
        )

    # --- SOC-Topk: survive top-k ranking ------------------------------------
    log = synthetic_workload(cars.schema, 500, seed=6)
    topk_problem = TopkVisibilityProblem(
        database=ads,
        log=log,
        new_tuple=new_car,
        budget=6,
        scoring=AttributeCountScore(),
        k=5,
    )
    solution = solve_topk(solver, topk_problem)
    visibility = topk_problem.visibility(solution.keep_mask)
    plain_solution = solver.solve(VisibilityProblem(log, new_car, 6))
    print(
        f"\nSOC-Topk (k=5, score = feature count) over {len(log)} queries:"
        f"\n  advertise {solution.kept_attributes}"
        f"\n  -> in the top-5 for {visibility} queries"
        f"\n  conjunctive-only optimum matches {plain_solution.satisfied} queries;"
        f"\n  ranking against {len(ads)} rival ads costs "
        f"{plain_solution.satisfied - visibility} of them"
    )


if __name__ == "__main__":
    main()
