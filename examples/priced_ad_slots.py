"""Extensions in action: priced ad slots and weighted (deduplicated) logs.

Two generalizations this library adds on top of the ICDE 2008 paper:

1. **Costed attributes** — ad slots are not equally priced: bold badges
   cost more than plain lines.  The budget becomes money, not a count.
2. **Weighted logs** — real logs repeat; deduplicating into
   (query, multiplicity) pairs keeps the optimum identical while the
   solver touches far fewer rows.

Run:  python examples/priced_ad_slots.py
"""

import time

from repro import VisibilityProblem
from repro.core import MaxFreqItemsetsSolver
from repro.core.weighted import deduplicated_problem, solve_weighted_itemsets
from repro.data import generate_cars, profile_workload, synthetic_workload
from repro.variants.costed import (
    CostedVisibilityProblem,
    solve_costed_density_greedy,
    solve_costed_ilp,
)


def costed_demo(cars, log) -> None:
    car = cars.table[42]
    # premium features cost more to highlight than commodity ones
    costs = tuple(
        3.0 if name in ("leather_seats", "sunroof", "turbo", "premium_sound") else 1.0
        for name in cars.schema.names
    )
    print("— costed ad slots (premium features cost 3x) —")
    for budget in (4.0, 8.0, 12.0):
        problem = CostedVisibilityProblem(log, car, costs, budget)
        exact = solve_costed_ilp(problem)
        greedy = solve_costed_density_greedy(problem)
        print(
            f"  budget ${budget:>4.0f}: exact {exact.satisfied} queries "
            f"(spent {exact.cost:.0f}) | greedy {greedy.satisfied} "
            f"(spent {greedy.cost:.0f})"
        )
        print(f"    -> {', '.join(exact.kept_attributes(problem))}")


def weighted_demo(cars, log) -> None:
    car = cars.table[42]
    profile = profile_workload(log)
    print("\n— weighted (deduplicated) solving —")
    print(
        f"  log: {profile.query_count} queries, {profile.distinct_queries} distinct "
        f"({profile.duplication_ratio:.1f}x duplication)"
    )
    problem = VisibilityProblem(log, car, 5)

    start = time.perf_counter()
    plain = MaxFreqItemsetsSolver().solve(problem)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    weighted = solve_weighted_itemsets(deduplicated_problem(problem))
    weighted_seconds = time.perf_counter() - start

    assert plain.satisfied == weighted.satisfied_weight
    print(f"  plain solver:    {plain.satisfied} queries in {plain_seconds:.3f}s")
    print(
        f"  weighted solver: {weighted.satisfied_weight} query-weight "
        f"in {weighted_seconds:.3f}s (same optimum, deduplicated input)"
    )


def main() -> None:
    cars = generate_cars(2_000, seed=55)
    # narrow query vocabulary -> heavy duplication, like a real site
    log = synthetic_workload(
        cars.schema, 1_500, seed=56, popularity="zipf",
    )
    costed_demo(cars, log)
    weighted_demo(cars, log)


if __name__ == "__main__":
    main()
