"""Text variant: picking the keywords of a classified apartment ad.

The paper's motivating scenario for text data: a classified ad can only
highlight a few keywords — which ones make it visible to the most
keyword searches?  Keywords are Boolean attributes (Section II.B), and
at text-vocabulary scale the greedy algorithms are the feasible ones
(Section V); on this small demo we can also afford the exact solver and
measure the greedy gap.

Run:  python examples/apartment_ad_keywords.py
"""

from repro import MaxFreqItemsetsSolver
from repro.data import generate_ads_corpus
from repro.variants import select_ad_keywords

AD_TEXT = """
Spacious sunny two bedroom apartment for rent near the train station in
downtown. Renovated kitchen with dishwasher, hardwood floors, balcony,
garage parking, laundry in building. Cats allowed, utilities included.
"""


def main() -> None:
    corpus, query_log = generate_ads_corpus(documents=300, queries=250, seed=31)
    print(
        f"competition: {len(corpus)} existing ads, "
        f"workload: {len(query_log)} keyword searches"
    )
    print(f"ad text: {' '.join(AD_TEXT.split())!r}\n")

    for budget in (3, 5, 8):
        greedy = select_ad_keywords(AD_TEXT, query_log, budget, corpus=corpus)
        exact = select_ad_keywords(
            AD_TEXT, query_log, budget, solver=MaxFreqItemsetsSolver(), corpus=corpus
        )
        print(f"budget = {budget} keywords")
        print(f"  greedy ({greedy.algorithm}): {greedy.keywords}")
        print(f"    -> visible to {greedy.satisfied_queries} searches")
        print(f"  exact  ({exact.algorithm}): {exact.keywords}")
        print(f"    -> visible to {exact.satisfied_queries} searches\n")


if __name__ == "__main__":
    main()
