"""Advertising a used car: full pipeline on the paper-scale dataset.

Builds the 15,211-car inventory (the synthetic stand-in for the paper's
autos.yahoo.com crawl), a real-workload surrogate of 185 buyer queries,
and picks the best attributes to list for a handful of cars — showing
that sporty features get picked for sports cars and comfort/safety
features for sedans, echoing the paper's anecdote.

Run:  python examples/car_advertiser.py
"""

from repro import MaxFreqItemsetsSolver, VisibilityProblem, make_solver, solve_per_attribute
from repro.data import generate_cars, real_workload_surrogate


def main() -> None:
    cars = generate_cars(15_211, seed=42)
    log = real_workload_surrogate(cars.schema, 185, seed=43)
    print(f"inventory: {len(cars)} cars, workload: {len(log)} buyer queries\n")

    solver = MaxFreqItemsetsSolver()
    shown: dict[str, int | None] = {"sports": None, "sedan": None, "suv": None}
    for index, car_class in enumerate(cars.classes):
        if car_class in shown and shown[car_class] is None:
            shown[car_class] = index
        if all(value is not None for value in shown.values()):
            break

    for car_class, index in shown.items():
        car = cars.table[index]
        problem = VisibilityProblem(log, car, budget=6)
        solution = solver.solve(problem)
        print(f"{car_class} car #{index} (has {problem.tuple_size} features)")
        print(f"  advertise: {solution.kept_attributes}")
        print(f"  visible to {solution.satisfied} of {len(log)} past searches")

        greedy = make_solver("ConsumeAttr").solve(problem)
        print(
            f"  greedy ConsumeAttr gets {greedy.satisfied} "
            f"({'matches optimal' if greedy.satisfied == solution.satisfied else 'sub-optimal'})"
        )

        # Per-attribute variant: best visibility per advertised attribute
        # (what to do when each listed attribute costs money).
        per_attr = solve_per_attribute(solver, log, car)
        print(
            f"  per-attribute optimum: {len(per_attr.best.kept_attributes)} attrs, "
            f"{per_attr.best.satisfied} queries "
            f"({per_attr.ratio:.2f} queries/attribute)\n"
        )




def inventory_batch_demo() -> None:
    """Bonus: optimize a whole batch of new listings at once, sharing the
    Section IV.C preprocessing index across all of them."""
    from repro.variants import optimize_inventory

    cars = generate_cars(3_000, seed=42)
    log = real_workload_surrogate(cars.schema, 185, seed=43)
    new_listings = [cars.table[i] for i in cars.random_car_indices(12, seed=44)]
    report = optimize_inventory(log, new_listings, budget=6)
    print("\n--- batch optimization of 12 new listings ---")
    print(report.to_text())


if __name__ == "__main__":
    main()
    inventory_batch_demo()
