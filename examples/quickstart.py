"""Quickstart: the paper's running example (Fig 1 of the ICDE 2008 paper).

An auto dealer wants to advertise a new car but can only list 3 of its
attributes.  Which 3 make it visible to the most past searches?

Run:  python examples/quickstart.py
"""

from repro import BooleanTable, Schema, VisibilityProblem, available_algorithms, make_solver


def main() -> None:
    # The schema of Boolean car features from the paper's example.
    schema = Schema(
        ["ac", "four_door", "turbo", "power_doors", "auto_trans", "power_brakes"]
    )

    # The query log Q: what past buyers searched for.
    query_log = BooleanTable.from_bit_rows(
        schema,
        [
            [1, 1, 0, 0, 0, 0],  # q1: AC and Four Door
            [1, 0, 0, 1, 0, 0],  # q2: AC and Power Doors
            [0, 1, 0, 1, 0, 0],  # q3: Four Door and Power Doors
            [0, 0, 0, 1, 0, 1],  # q4: Power Doors and Power Brakes
            [0, 0, 1, 0, 1, 0],  # q5: Turbo and Auto Trans
        ],
    )

    # The new car t to be advertised, and the ad budget m = 3 attributes.
    new_car = schema.mask_from_bits([1, 1, 0, 1, 1, 1])
    problem = VisibilityProblem(query_log, new_car, budget=3)

    print(f"query log: {len(query_log)} queries over {schema.width} attributes")
    print(f"new car has: {schema.names_of(new_car)}")
    print(f"budget: {problem.budget} attributes\n")

    for name in available_algorithms():
        solution = make_solver(name).solve(problem)
        kind = "exact " if solution.optimal else "greedy"
        print(
            f"  {name:18s} [{kind}] -> keep {solution.kept_attributes} "
            f"({solution.satisfied} queries satisfied)"
        )

    best = make_solver("MaxFreqItemSets").solve(problem)
    print(
        f"\nAdvertise {best.kept_attributes}: "
        f"{best.satisfied} of {len(query_log)} past searches would find this car."
    )
    # The paper's Example 1 answer: AC, Four Door, Power Doors -> 3 queries.
    assert best.satisfied == 3


if __name__ == "__main__":
    main()
