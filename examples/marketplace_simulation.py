"""Does optimizing against yesterday's log pay off tomorrow?

The paper optimizes visibility against a *past* query log; this example
closes the loop with a marketplace simulation: split buyer traffic into
a training half (what the seller can see) and a held-out half (future
buyers), choose attributes with each strategy on the training half, post
the ads, and count the impressions future buyers actually deliver.

Run:  python examples/marketplace_simulation.py
"""

from repro import MaxFreqItemsetsSolver, VisibilityProblem, make_solver
from repro.data import generate_cars, synthetic_workload
from repro.simulate import Marketplace, evaluate_strategies, random_selection, split_log
from repro.simulate.evaluation import solver_strategy


def main() -> None:
    cars = generate_cars(2_000, seed=33)
    # zipf-skewed buyers: a few features (AC, automatic, ...) dominate
    traffic = synthetic_workload(cars.schema, 1_200, seed=34, popularity="zipf")
    train, test = split_log(traffic, train_fraction=0.5, seed=35)
    sellers = [cars.table[i] for i in cars.random_car_indices(6, seed=36)]

    report = evaluate_strategies(
        {
            "MaxFreqItemSets (optimal)": solver_strategy(MaxFreqItemsetsSolver()),
            "ConsumeAttr (greedy)": solver_strategy(make_solver("ConsumeAttr")),
            "CoverageGreedy": solver_strategy(make_solver("CoverageGreedy")),
            "random attributes": random_selection(seed=37),
        },
        train,
        test,
        sellers,
        budget=5,
    )
    print("strategy comparison (avg over 6 sellers):")
    print(report.to_text())

    # Replay the held-out traffic through an actual marketplace for one
    # seller, so the numbers above are visibly real impressions.
    seller = sellers[0]
    market = Marketplace(cars.schema)
    problem = VisibilityProblem(train, seller, 5)
    optimal_mask = MaxFreqItemsetsSolver().solve(problem).keep_mask
    random_mask = random_selection(seed=38)(problem)
    optimal_ad = market.post_ad(optimal_mask, "log-optimized ad")
    random_ad = market.post_ad(random_mask, "random ad")
    impressions = market.run_workload(test)
    print("\nheld-out impressions for one seller:")
    print(f"  log-optimized ad: {impressions[optimal_ad]}")
    print(f"  random ad:        {impressions[random_ad]}")


if __name__ == "__main__":
    main()
