"""Execute the doctest examples embedded in module docstrings.

The usage examples in docstrings are part of the documentation
deliverable; running them keeps them truthful.
"""

import doctest

import pytest

import repro.booldata.index
import repro.booldata.schema
import repro.booldata.table
import repro.common.bits
import repro.common.combinatorics
import repro.common.estimates
import repro.common.tables
import repro.obs.metrics
import repro.obs.recorder
import repro.obs.timing
import repro.obs.tracing
import repro.retrieval.text
import repro.stream.index
import repro.stream.log

MODULES = [
    repro.common.bits,
    repro.common.combinatorics,
    repro.common.estimates,
    repro.common.tables,
    repro.obs.metrics,
    repro.obs.recorder,
    repro.obs.timing,
    repro.obs.tracing,
    repro.booldata.index,
    repro.booldata.schema,
    repro.booldata.table,
    repro.retrieval.text,
    repro.stream.index,
    repro.stream.log,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_doctests_actually_exist():
    """Guard against the suite silently testing nothing."""
    total = sum(
        len(doctest.DocTestFinder().find(module)) and
        sum(len(t.examples) for t in doctest.DocTestFinder().find(module))
        for module in MODULES
    )
    assert total >= 10
