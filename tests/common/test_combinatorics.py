"""Tests for binomial/combination helpers over bitmasks."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.bits import is_subset
from repro.common.combinatorics import (
    binomial,
    combinations_of_mask,
    count_combinations_of_mask,
)


class TestBinomial:
    def test_known_values(self):
        assert binomial(6, 2) == 15
        assert binomial(5, 0) == 1
        assert binomial(5, 5) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0


class TestCombinationsOfMask:
    def test_example(self):
        assert sorted(combinations_of_mask(0b111, 2)) == [0b011, 0b101, 0b110]

    def test_size_zero_yields_empty_mask(self):
        assert list(combinations_of_mask(0b1010, 0)) == [0]

    def test_oversized_yields_nothing(self):
        assert list(combinations_of_mask(0b11, 3)) == []

    def test_respects_sparse_masks(self):
        # mask with non-contiguous bits
        combos = sorted(combinations_of_mask(0b10100010, 2))
        assert combos == [0b00100010, 0b10000010, 0b10100000]

    @given(st.integers(0, 2**12 - 1), st.integers(0, 12))
    def test_count_and_membership(self, mask, size):
        combos = list(combinations_of_mask(mask, size))
        assert len(combos) == count_combinations_of_mask(mask, size)
        assert len(set(combos)) == len(combos)
        for combo in combos:
            assert combo.bit_count() == size
            assert is_subset(combo, mask)
