"""Tests for seeding, timing and table-formatting utilities."""

import random
import time

import pytest

from repro.common.errors import (
    InfeasibleProblemError,
    ReproError,
    SolverBudgetExceededError,
    ValidationError,
)
from repro.common.rng import ensure_rng, spawn_rng
from repro.common.tables import format_series, format_table
from repro.common.timing import Stopwatch, time_call


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_passthrough_of_random_instance(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), random.Random)


class TestSpawnRng:
    def test_streams_differ(self):
        parent = random.Random(5)
        child_a = spawn_rng(parent, 1)
        child_b = spawn_rng(parent, 2)
        assert child_a.random() != child_b.random()

    def test_deterministic_given_parent_state(self):
        values = []
        for _ in range(2):
            parent = random.Random(5)
            values.append(spawn_rng(parent, 1).random())
        assert values[0] == values[1]


class TestStopwatch:
    def test_lap_accumulates(self):
        watch = Stopwatch()
        with watch.lap("work"):
            time.sleep(0.01)
        with watch.lap("work"):
            pass
        assert watch.laps["work"] >= 0.01
        assert watch.total == sum(watch.laps.values())

    def test_multiple_lap_names(self):
        watch = Stopwatch()
        with watch.lap("a"):
            pass
        with watch.lap("b"):
            pass
        assert set(watch.laps) == {"a", "b"}


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["m", "time"], [[1, 0.5], [20, 1.25]])
        lines = text.splitlines()
        assert lines[0].startswith("m")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        text = format_table(["x"], [[0.000001], [123456789.0], [0.0]])
        assert "1.000e-06" in text
        assert "1.235e+08" in text
        # exact zero renders compactly
        assert "\n0" in text


class TestFormatSeries:
    def test_none_renders_as_dash(self):
        text = format_series("q", [100, 200], {"ILP": [0.5, None]})
        assert "-" in text.splitlines()[-1]

    def test_all_series_present(self):
        text = format_series("m", [1], {"A": [1], "B": [2]})
        assert "A" in text and "B" in text


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (ValidationError, InfeasibleProblemError, SolverBudgetExceededError):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_budget_error_carries_incumbent(self):
        error = SolverBudgetExceededError("out of nodes", best_known=41)
        assert error.best_known == 41
