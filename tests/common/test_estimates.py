"""Tests for the Good-Turing estimate used by the random-walk stopper."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.estimates import good_turing_unseen_estimate, singleton_count


class TestSingletonCount:
    def test_counts_only_ones(self):
        assert singleton_count([1, 2, 1, 3, 1]) == 3

    def test_empty(self):
        assert singleton_count([]) == 0


class TestGoodTuring:
    def test_empty_sequence_means_everything_unseen(self):
        assert good_turing_unseen_estimate([]) == 1.0

    def test_docstring_example(self):
        assert good_turing_unseen_estimate(["a", "a", "b", "c"]) == 0.5

    def test_all_repeated_means_zero_unseen_mass(self):
        assert good_turing_unseen_estimate(["x", "x", "y", "y"]) == 0.0

    def test_all_distinct_means_full_unseen_mass(self):
        assert good_turing_unseen_estimate(["a", "b", "c"]) == 1.0

    @given(st.lists(st.integers(0, 5), max_size=50))
    def test_bounded_between_zero_and_one(self, draws):
        estimate = good_turing_unseen_estimate(draws)
        assert 0.0 <= estimate <= 1.0

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    def test_doubling_the_sequence_kills_singletons(self, draws):
        assert good_turing_unseen_estimate(draws + draws) == 0.0
