"""Unit and property tests for the bitmask helpers."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bits


class TestFullMask:
    def test_zero_width(self):
        assert bits.full_mask(0) == 0

    def test_small_widths(self):
        assert bits.full_mask(1) == 1
        assert bits.full_mask(4) == 0b1111

    def test_large_width_uses_arbitrary_precision(self):
        assert bits.full_mask(200).bit_count() == 200

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            bits.full_mask(-1)


class TestIsSubset:
    def test_empty_is_subset_of_everything(self):
        assert bits.is_subset(0, 0)
        assert bits.is_subset(0, 0b101)

    def test_proper_subset(self):
        assert bits.is_subset(0b001, 0b011)
        assert not bits.is_subset(0b100, 0b011)

    def test_equal_sets(self):
        assert bits.is_subset(0b1010, 0b1010)

    @given(st.integers(0, 2**20), st.integers(0, 2**20))
    def test_matches_set_semantics(self, a, b):
        as_sets = set(bits.bit_indices(a)) <= set(bits.bit_indices(b))
        assert bits.is_subset(a, b) == as_sets


class TestBitIndicesAndFromIndices:
    def test_empty(self):
        assert bits.bit_indices(0) == []
        assert bits.from_indices([]) == 0

    def test_round_trip_examples(self):
        assert bits.bit_indices(0b1010) == [1, 3]
        assert bits.from_indices([1, 3]) == 0b1010

    def test_from_indices_duplicates_collapse(self):
        assert bits.from_indices([2, 2, 2]) == 0b100

    def test_from_indices_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.from_indices([-1])

    @given(st.sets(st.integers(0, 60)))
    def test_round_trip_property(self, indices):
        assert set(bits.bit_indices(bits.from_indices(indices))) == indices


class TestFirstBit:
    def test_lowest_bit(self):
        assert bits.first_bit(0b1000) == 3
        assert bits.first_bit(0b1010) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bits.first_bit(0)


class TestMaskComplement:
    def test_simple(self):
        assert bits.mask_complement(0b0101, 4) == 0b1010

    def test_involution(self):
        mask = 0b01101
        assert bits.mask_complement(bits.mask_complement(mask, 5), 5) == mask

    def test_out_of_width_rejected(self):
        with pytest.raises(ValueError):
            bits.mask_complement(0b100, 2)

    @given(st.integers(1, 60), st.data())
    def test_partitions_the_universe(self, width, data):
        mask = data.draw(st.integers(0, bits.full_mask(width)))
        complement = bits.mask_complement(mask, width)
        assert mask & complement == 0
        assert mask | complement == bits.full_mask(width)


class TestIterSubmasks:
    def test_counts_powerset(self):
        submasks = list(bits.iter_submasks(0b1011))
        assert len(submasks) == 8
        assert len(set(submasks)) == 8

    def test_all_are_submasks(self):
        for sub in bits.iter_submasks(0b1101):
            assert bits.is_subset(sub, 0b1101)

    def test_zero_mask(self):
        assert list(bits.iter_submasks(0)) == [0]


class TestRandomMask:
    def test_exact_size(self):
        rng = random.Random(0)
        for size in range(0, 11):
            assert bits.random_mask(10, size, rng).bit_count() == size

    def test_within_width(self):
        rng = random.Random(1)
        mask = bits.random_mask(8, 4, rng)
        assert mask & ~bits.full_mask(8) == 0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            bits.random_mask(4, 5, random.Random(0))


class TestIterBitIndices:
    def test_matches_bit_indices_small(self):
        for mask in (0, 1, 0b1010, 0b1111, 1 << 63):
            assert list(bits.iter_bit_indices(mask)) == bits.bit_indices(mask)

    @given(st.integers(0, 2**300))
    def test_matches_bit_indices(self, mask):
        assert list(bits.iter_bit_indices(mask)) == bits.bit_indices(mask)

    def test_huge_sparse_mask(self):
        mask = (1 << 100_000) | (1 << 12_345) | 1
        assert list(bits.iter_bit_indices(mask)) == [0, 12_345, 100_000]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            next(bits.iter_bit_indices(-1))
