"""Edge-case and failure-injection tests for the LP stack."""

import numpy as np
import pytest

from repro.lp import BranchAndBoundSolver, LinearExpr, Model
from repro.lp.simplex import SimplexSolver
from repro.lp.solution import SolveStatus


def _empty(n):
    return np.zeros((0, n)), np.zeros(0)


class TestSimplexBudget:
    def test_iteration_budget_surfaces(self):
        """A tiny iteration budget must yield BUDGET_EXCEEDED, not wrong answers."""
        rng = np.random.default_rng(0)
        n, m = 12, 18
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m, n))
        b_ub = np.abs(rng.normal(size=m)) + 1
        a_eq, b_eq = _empty(n)
        solver = SimplexSolver(max_iterations=1)
        solution = solver.solve(c, a_ub, b_ub, a_eq, b_eq, np.zeros(n), np.ones(n))
        assert solution.status in (SolveStatus.BUDGET_EXCEEDED, SolveStatus.OPTIMAL)

    def test_zero_variable_feasible(self):
        solver = SimplexSolver()
        solution = solver.solve(
            np.zeros(0), np.zeros((0, 0)), np.zeros(0),
            np.zeros((0, 0)), np.zeros(0), np.zeros(0), np.zeros(0),
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == 0.0

    def test_zero_variable_infeasible_constant_row(self):
        solver = SimplexSolver()
        solution = solver.solve(
            np.zeros(0), np.zeros((1, 0)), np.array([-1.0]),
            np.zeros((0, 0)), np.zeros(0), np.zeros(0), np.zeros(0),
        )
        assert solution.status is SolveStatus.INFEASIBLE


class TestDegeneracyAndRedundancy:
    def test_many_redundant_equalities(self):
        # the same equality repeated: phase 1 must drop redundant rows
        n = 3
        a_eq = np.tile(np.array([[1.0, 1.0, 1.0]]), (4, 1))
        b_eq = np.full(4, 2.0)
        solution = SimplexSolver().solve(
            np.array([1.0, 2.0, 3.0]),
            *_empty(n), a_eq, b_eq,
            np.zeros(n), np.full(n, 10.0),
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(2.0)  # all mass on x0

    def test_highly_degenerate_lp_terminates(self):
        """Many ties in the ratio test: the Bland fallback must terminate."""
        n = 6
        a_ub = np.vstack([np.eye(n), np.ones((1, n))])
        b_ub = np.concatenate([np.zeros(n), [0.0]])  # everything pinned at 0
        solution = SimplexSolver().solve(
            -np.ones(n), a_ub, b_ub, *_empty(n), np.zeros(n), np.ones(n)
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(0.0)

    def test_fixed_variables(self):
        # low == high pins the variable
        solution = SimplexSolver().solve(
            np.array([1.0, 1.0]), *_empty(2), *_empty(2),
            np.array([2.0, 0.0]), np.array([2.0, 5.0]),
        )
        assert solution.x[0] == pytest.approx(2.0)


class TestBranchAndBoundEdges:
    def test_unbounded_root_reported(self):
        model = Model()
        x = model.add_var("x")  # no upper bound
        model.maximize(x)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.status is SolveStatus.UNBOUNDED

    def test_all_continuous_model_solves_in_one_node(self):
        model = Model()
        x = model.add_var("x", 0, 4)
        y = model.add_var("y", 0, 4)
        model.add_constraint(x + y <= 5)
        model.maximize(x + 2 * y)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(9.0)  # y=4, x=1
        assert result.nodes_explored <= 2

    def test_equality_bound_interaction(self):
        model = Model()
        x = model.add_var("x", 0, 3, integer=True)
        y = model.add_var("y", 0, 3, integer=True)
        model.add_constraint(2 * x + 2 * y == 5)  # impossible for integers... as LP feasible
        model.maximize(x + y)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_objective_constant_carried_through(self):
        model = Model()
        x = model.add_binary("x")
        model.maximize(3 * x + 7)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(10.0)

    def test_incumbent_reported_with_node_budget(self):
        rng = np.random.default_rng(7)
        model = Model()
        xs = [model.add_binary(f"x{i}") for i in range(16)]
        weights = rng.integers(1, 30, size=16)
        values = rng.integers(1, 30, size=16)
        model.add_constraint(
            LinearExpr.sum(int(w) * x for w, x in zip(weights, xs))
            <= int(weights.sum() // 3)
        )
        model.maximize(LinearExpr.sum(int(v) * x for v, x in zip(values, xs)))
        result = BranchAndBoundSolver(max_nodes=3).solve_model(model)
        if result.status is SolveStatus.BUDGET_EXCEEDED:
            # the rounding-heuristic incumbent must still be feasible
            assert result.x.size > 0 or np.isnan(result.objective)
        else:
            assert result.status is SolveStatus.OPTIMAL


class TestMakeSolutionPadding:
    def test_unpadded_solution_allowed(self, paper_problem):
        from repro.core import ConsumeAttrSolver

        solver = ConsumeAttrSolver()
        solution = solver.make_solution(paper_problem, 0, pad=False)
        assert solution.keep_mask == 0
        assert solution.satisfied == 0
