"""Hypothesis property tests: native LP/MILP solvers vs HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import BranchAndBoundSolver, LinearExpr, Model
from repro.lp.simplex import SimplexSolver
from repro.lp.solution import SolveStatus

pytest.importorskip("scipy")

from repro.lp.scipy_backend import ScipyMilpSolver, solve_lp_with_scipy  # noqa: E402


@st.composite
def bounded_lp(draw):
    """Random LP over the unit box with integer-ish data (stable numerics)."""
    n = draw(st.integers(1, 5))
    m = draw(st.integers(0, 5))
    c = [draw(st.integers(-5, 5)) for _ in range(n)]
    a_ub = [[draw(st.integers(-4, 4)) for _ in range(n)] for _ in range(m)]
    b_ub = [draw(st.integers(-2, 8)) for _ in range(m)]
    return (
        np.array(c, dtype=float),
        np.array(a_ub, dtype=float).reshape(m, n),
        np.array(b_ub, dtype=float),
    )


@settings(max_examples=60, deadline=None)
@given(bounded_lp())
def test_simplex_matches_highs_on_unit_box(problem):
    c, a_ub, b_ub = problem
    n = len(c)
    low, high = np.zeros(n), np.ones(n)
    args = (c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), low, high)
    ours = SimplexSolver().solve(*args)
    reference = solve_lp_with_scipy(*args)
    assert ours.status == reference.status
    if ours.status is SolveStatus.OPTIMAL:
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
        # our solution must itself be feasible
        assert np.all(a_ub @ ours.x <= b_ub + 1e-7)
        assert np.all(ours.x >= -1e-9) and np.all(ours.x <= 1 + 1e-9)


@st.composite
def binary_program(draw):
    """Random small 0/1 program: maximize c.x subject to <= rows."""
    n = draw(st.integers(1, 6))
    m = draw(st.integers(1, 4))
    c = [draw(st.integers(0, 9)) for _ in range(n)]
    rows = [[draw(st.integers(0, 4)) for _ in range(n)] for _ in range(m)]
    rhs = [draw(st.integers(0, 10)) for _ in range(m)]
    return c, rows, rhs


@settings(max_examples=40, deadline=None)
@given(binary_program())
def test_branch_and_bound_matches_highs_on_binary_programs(program):
    c, rows, rhs = program
    model = Model()
    xs = [model.add_binary(f"x{i}") for i in range(len(c))]
    for row, bound in zip(rows, rhs):
        model.add_constraint(
            LinearExpr.sum(coeff * x for coeff, x in zip(row, xs)) <= bound
        )
    model.maximize(LinearExpr.sum(coeff * x for coeff, x in zip(c, xs)))
    ours = BranchAndBoundSolver().solve_model(model)
    reference = ScipyMilpSolver().solve_model(model)
    assert ours.status == reference.status == SolveStatus.OPTIMAL
    assert ours.objective == pytest.approx(reference.objective)


@settings(max_examples=30, deadline=None)
@given(binary_program())
def test_branch_and_bound_solution_is_feasible_and_integral(program):
    c, rows, rhs = program
    model = Model()
    xs = [model.add_binary(f"x{i}") for i in range(len(c))]
    for row, bound in zip(rows, rhs):
        model.add_constraint(
            LinearExpr.sum(coeff * x for coeff, x in zip(row, xs)) <= bound
        )
    model.maximize(LinearExpr.sum(coeff * x for coeff, x in zip(c, xs)))
    result = BranchAndBoundSolver().solve_model(model)
    x = result.x
    assert np.allclose(x, np.round(x), atol=1e-6)
    for row, bound in zip(rows, rhs):
        assert np.dot(row, x) <= bound + 1e-6
    # reported objective matches the reported solution vector
    assert result.objective == pytest.approx(float(np.dot(c, np.round(x))))
