"""Tests for the native branch-and-bound MILP solver."""

import numpy as np
import pytest

from repro.lp import BranchAndBoundSolver, LinearExpr, Model
from repro.lp.solution import SolveStatus


def knapsack_model(values, weights, capacity):
    model = Model("knapsack")
    xs = [model.add_binary(f"x{i}") for i in range(len(values))]
    model.add_constraint(
        LinearExpr.sum(w * x for w, x in zip(weights, xs)) <= capacity
    )
    model.maximize(LinearExpr.sum(v * x for v, x in zip(values, xs)))
    return model, xs


class TestKnapsack:
    def test_small_knapsack(self):
        model, xs = knapsack_model([4, 2, 10, 1, 2], [12, 1, 4, 1, 2], 15)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(15.0)

    def test_solution_is_integral(self):
        model, xs = knapsack_model([3, 5, 7], [2, 3, 4], 5)
        result = BranchAndBoundSolver().solve_model(model)
        for x in xs:
            assert result.x[x.index] == pytest.approx(round(result.x[x.index]))

    def test_zero_capacity(self):
        model, _ = knapsack_model([3, 5], [2, 3], 0)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(0.0)


class TestMixedInteger:
    def test_continuous_variables_stay_fractional(self):
        model = Model()
        x = model.add_binary("x")
        y = model.add_var("y", low=0, high=10)
        model.add_constraint(2 * x + y <= 3.5)
        model.maximize(x + y)
        result = BranchAndBoundSolver().solve_model(model)
        # x=1, y=1.5 beats x=0, y=3.5? 1+1.5=2.5 < 3.5 -> optimum x=0, y=3.5
        assert result.objective == pytest.approx(3.5)

    def test_general_integer_variable(self):
        model = Model()
        n = model.add_var("n", low=0, high=10, integer=True)
        model.add_constraint(3 * n <= 14)
        model.maximize(n)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(4.0)


class TestStatuses:
    def test_infeasible(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 2)
        model.maximize(x)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_minimization_orientation(self):
        model = Model()
        x = model.add_var("x", low=0, high=5, integer=True)
        model.add_constraint(x >= 1.2)
        model.minimize(x)
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(2.0)

    def test_node_budget_reported(self):
        # A tight node budget must surface as BUDGET_EXCEEDED, not silence.
        rng = np.random.default_rng(3)
        values = rng.integers(1, 50, size=14).tolist()
        weights = rng.integers(1, 50, size=14).tolist()
        model, _ = knapsack_model(values, weights, int(sum(weights) * 0.37))
        result = BranchAndBoundSolver(max_nodes=1).solve_model(model)
        assert result.status in (SolveStatus.OPTIMAL, SolveStatus.BUDGET_EXCEEDED)


class TestAgainstScipyMilp:
    def test_random_knapsacks_match_highs(self):
        pytest.importorskip("scipy")
        from repro.lp.scipy_backend import ScipyMilpSolver

        rng = np.random.default_rng(9)
        for _ in range(20):
            n = int(rng.integers(2, 9))
            values = rng.integers(1, 20, size=n).tolist()
            weights = rng.integers(1, 20, size=n).tolist()
            capacity = int(rng.integers(1, max(2, sum(weights))))
            model, _ = knapsack_model(values, weights, capacity)
            ours = BranchAndBoundSolver().solve_model(model)
            reference = ScipyMilpSolver().solve_model(model)
            assert ours.status == reference.status == SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(reference.objective)

    def test_random_assignment_milps_match_highs(self):
        pytest.importorskip("scipy")
        from repro.lp.scipy_backend import ScipyMilpSolver

        rng = np.random.default_rng(21)
        for _ in range(10):
            size = 3
            cost = rng.integers(1, 10, size=(size, size))
            model = Model("assignment")
            cells = [[model.add_binary(f"x{i}{j}") for j in range(size)] for i in range(size)]
            for i in range(size):
                model.add_constraint(LinearExpr.sum(cells[i]) == 1)
            for j in range(size):
                model.add_constraint(LinearExpr.sum(row[j] for row in cells) == 1)
            model.minimize(
                LinearExpr.sum(
                    int(cost[i][j]) * cells[i][j]
                    for i in range(size)
                    for j in range(size)
                )
            )
            ours = BranchAndBoundSolver().solve_model(model)
            reference = ScipyMilpSolver().solve_model(model)
            assert ours.objective == pytest.approx(reference.objective)
