"""Tests for the two-phase primal simplex."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.lp.simplex import SimplexSolver
from repro.lp.solution import SolveStatus


def solve(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, low=None, high=None):
    c = np.asarray(c, dtype=float)
    n = len(c)
    return SimplexSolver().solve(
        c,
        np.asarray(a_ub, dtype=float) if a_ub is not None else np.zeros((0, n)),
        np.asarray(b_ub, dtype=float) if b_ub is not None else np.zeros(0),
        np.asarray(a_eq, dtype=float) if a_eq is not None else np.zeros((0, n)),
        np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0),
        np.asarray(low, dtype=float) if low is not None else np.zeros(n),
        np.asarray(high, dtype=float) if high is not None else np.full(n, np.inf),
    )


class TestBasicLPs:
    def test_textbook_maximization(self):
        # min -x - 2y s.t. x + y <= 4, x <= 3  -> optimum -8 at (0, 4)
        solution = solve([-1, -2], [[1, 1], [1, 0]], [4, 3])
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-8.0)
        assert solution.x == pytest.approx([0.0, 4.0])

    def test_equality_constraint(self):
        # min 3a + b s.t. a + b == 7, 0 <= a,b <= 10 -> 7 at (0, 7)
        solution = solve([3, 1], a_eq=[[1, 1]], b_eq=[7], high=[10, 10])
        assert solution.objective == pytest.approx(7.0)
        assert solution.x == pytest.approx([0.0, 7.0])

    def test_upper_bounds_respected(self):
        solution = solve([-1], high=[2.5])
        assert solution.objective == pytest.approx(-2.5)

    def test_nonzero_lower_bounds(self):
        # min x + y with x >= 1.5, y >= 2 -> 3.5
        solution = solve([1, 1], low=[1.5, 2.0])
        assert solution.objective == pytest.approx(3.5)
        assert solution.x == pytest.approx([1.5, 2.0])

    def test_degenerate_constraints(self):
        # redundant equalities should not break phase 1
        solution = solve(
            [1, 1],
            a_eq=[[1, 1], [2, 2]],
            b_eq=[4, 8],
            high=[10, 10],
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(4.0)


class TestStatuses:
    def test_infeasible_inequalities(self):
        # x <= -1 with x >= 0
        solution = solve([1], [[1]], [-1])
        assert solution.status is SolveStatus.INFEASIBLE

    def test_infeasible_bounds(self):
        solution = solve([1], low=[3], high=[2])
        assert solution.status is SolveStatus.INFEASIBLE

    def test_infeasible_equalities(self):
        solution = solve([1, 1], a_eq=[[1, 0], [1, 0]], b_eq=[1, 2])
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        solution = solve([-1])  # min -x, x >= 0, no upper bound
        assert solution.status is SolveStatus.UNBOUNDED

    def test_infinite_lower_bound_rejected(self):
        with pytest.raises(ValidationError):
            solve([1], low=[-np.inf])


class TestAgainstScipy:
    """Cross-check random LPs against HiGHS."""

    def test_random_bounded_lps(self):
        pytest.importorskip("scipy")
        from repro.lp.scipy_backend import solve_lp_with_scipy

        rng = np.random.default_rng(4)
        for _ in range(40):
            n = rng.integers(1, 6)
            m = rng.integers(0, 6)
            c = rng.normal(size=n)
            a_ub = rng.normal(size=(m, n))
            # keep feasible: rhs at least A @ 0 = 0 shifted up
            b_ub = np.abs(rng.normal(size=m)) + 0.5
            low = np.zeros(n)
            high = np.full(n, float(rng.uniform(0.5, 5.0)))
            ours = SimplexSolver().solve(
                c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), low, high
            )
            reference = solve_lp_with_scipy(
                c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), low, high
            )
            assert ours.status == reference.status
            if ours.status is SolveStatus.OPTIMAL:
                assert ours.objective == pytest.approx(reference.objective, abs=1e-6)

    def test_random_equality_lps(self):
        pytest.importorskip("scipy")
        from repro.lp.scipy_backend import solve_lp_with_scipy

        rng = np.random.default_rng(11)
        for _ in range(25):
            n = int(rng.integers(2, 6))
            c = rng.normal(size=n)
            # one equality through a random feasible interior point
            point = rng.uniform(0.2, 0.8, size=n)
            a_eq = rng.normal(size=(1, n))
            b_eq = a_eq @ point
            low = np.zeros(n)
            high = np.ones(n)
            ours = SimplexSolver().solve(
                c, np.zeros((0, n)), np.zeros(0), a_eq, b_eq, low, high
            )
            reference = solve_lp_with_scipy(
                c, np.zeros((0, n)), np.zeros(0), a_eq, b_eq, low, high
            )
            assert ours.status == reference.status == SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
