"""Hypothesis property tests for the LP modeling layer.

The compiled matrix form and the symbolic constraint objects must agree
on feasibility for any assignment, and solver answers must satisfy the
symbolic constraints they were built from.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import BranchAndBoundSolver, LinearExpr, Model
from repro.lp.solution import SolveStatus


@st.composite
def random_model(draw):
    """A small bounded model with random <=/>=/== constraints."""
    model = Model()
    n = draw(st.integers(1, 4))
    xs = [
        model.add_var(f"x{i}", low=0, high=draw(st.integers(1, 5)),
                      integer=draw(st.booleans()))
        for i in range(n)
    ]
    for _ in range(draw(st.integers(0, 4))):
        coeffs = [draw(st.integers(-3, 3)) for _ in range(n)]
        expr = LinearExpr.sum(c * x for c, x in zip(coeffs, xs))
        rhs = draw(st.integers(-5, 15))
        kind = draw(st.sampled_from(["le", "ge"]))
        model.add_constraint(expr <= rhs if kind == "le" else expr >= rhs)
    objective = LinearExpr.sum(
        draw(st.integers(-4, 4)) * x for x in xs
    )
    if draw(st.booleans()):
        model.maximize(objective)
    else:
        model.minimize(objective)
    return model, xs


@settings(max_examples=50, deadline=None)
@given(random_model())
def test_compiled_matrices_agree_with_symbolic_constraints(model_and_vars):
    model, xs = model_and_vars
    compiled = model.compile()
    rng = np.random.default_rng(0)
    for _ in range(5):
        x = np.array([rng.uniform(var.low, var.high) for var in xs])
        assignment = model.assignment_from_vector(x)
        symbolic_ok = all(c.satisfied_by(assignment) for c in model.constraints)
        matrix_ok = True
        if compiled.a_ub.size:
            matrix_ok &= bool(np.all(compiled.a_ub @ x <= compiled.b_ub + 1e-7))
        if compiled.a_eq.size:
            matrix_ok &= bool(
                np.all(np.abs(compiled.a_eq @ x - compiled.b_eq) <= 1e-7)
            )
        assert symbolic_ok == matrix_ok


@settings(max_examples=50, deadline=None)
@given(random_model())
def test_solver_answers_satisfy_the_symbolic_model(model_and_vars):
    model, xs = model_and_vars
    result = BranchAndBoundSolver().solve_model(model)
    if result.status is not SolveStatus.OPTIMAL:
        assert result.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED)
        return
    assignment = model.assignment_from_vector(result.x)
    for constraint in model.constraints:
        assert constraint.satisfied_by(assignment, tol=1e-6)
    # bounds and integrality
    for var in xs:
        value = assignment[var]
        assert var.low - 1e-6 <= value <= var.high + 1e-6
        if var.integer:
            assert value == pytest.approx(round(value), abs=1e-6)
    # reported objective equals the expression's value
    assert result.objective == pytest.approx(
        model.objective.value(assignment), abs=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(random_model())
def test_native_matches_scipy_on_random_models(model_and_vars):
    pytest.importorskip("scipy")
    from repro.lp.scipy_backend import ScipyMilpSolver

    model, _ = model_and_vars
    ours = BranchAndBoundSolver().solve_model(model)
    reference = ScipyMilpSolver().solve_model(model)
    assert ours.status == reference.status
    if ours.status is SolveStatus.OPTIMAL:
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
