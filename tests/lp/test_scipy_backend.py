"""Tests for the optional HiGHS backend wrapper."""

import numpy as np
import pytest

from repro.lp import LinearExpr, Model
from repro.lp.solution import SolveStatus

pytest.importorskip("scipy")

from repro.lp.scipy_backend import (  # noqa: E402
    ScipyMilpSolver,
    scipy_available,
    solve_lp_with_scipy,
)


class TestAvailability:
    def test_scipy_available_true_here(self):
        assert scipy_available()


class TestLpWrapper:
    def test_simple_lp(self):
        solution = solve_lp_with_scipy(
            np.array([-1.0, -2.0]),
            np.array([[1.0, 1.0]]),
            np.array([4.0]),
            np.zeros((0, 2)),
            np.zeros(0),
            np.zeros(2),
            np.array([np.inf, np.inf]),
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(-8.0)

    def test_infeasible_lp(self):
        solution = solve_lp_with_scipy(
            np.array([1.0]),
            np.array([[1.0]]),
            np.array([-1.0]),
            np.zeros((0, 1)),
            np.zeros(0),
            np.zeros(1),
            np.array([np.inf]),
        )
        assert solution.status is SolveStatus.INFEASIBLE


class TestMilpWrapper:
    def test_milp_with_equalities(self):
        model = Model()
        x = model.add_var("x", 0, 10, integer=True)
        y = model.add_var("y", 0, 10, integer=True)
        model.add_constraint(x + y == 7)
        model.maximize(2 * x + y)
        result = ScipyMilpSolver().solve_model(model)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(14.0)  # x=7, y=0

    def test_milp_infeasible(self):
        model = Model()
        x = model.add_binary("x")
        model.add_constraint(x >= 2)
        model.minimize(x)
        result = ScipyMilpSolver().solve_model(model)
        assert result.status is SolveStatus.INFEASIBLE

    def test_objective_orientation_matches_model(self):
        model = Model()
        x = model.add_binary("x")
        model.maximize(5 * x)
        result = ScipyMilpSolver().solve_model(model)
        assert result.objective == pytest.approx(5.0)
