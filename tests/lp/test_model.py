"""Tests for the LP/MILP modeling layer."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.lp import Constraint, LinearExpr, Model, Sense


class TestExpressions:
    def test_variable_arithmetic(self):
        model = Model()
        x = model.add_var("x")
        y = model.add_var("y")
        expr = 2 * x + y - 3
        assert expr.coeffs[x] == 2
        assert expr.coeffs[y] == 1
        assert expr.constant == -3

    def test_sum(self):
        model = Model()
        xs = [model.add_var(f"x{i}") for i in range(3)]
        expr = LinearExpr.sum(xs)
        assert all(expr.coeffs[x] == 1 for x in xs)

    def test_subtraction_cancels(self):
        model = Model()
        x = model.add_var("x")
        expr = (x + x) - 2 * x
        assert expr.coeffs[x] == 0

    def test_value_evaluation(self):
        model = Model()
        x = model.add_var("x")
        expr = 3 * x + 1
        assert expr.value({x: 2.0}) == 7.0

    def test_non_scalar_multiplication_rejected(self):
        model = Model()
        x = model.add_var("x")
        with pytest.raises(ValidationError):
            x * x  # noqa: B018 - the point is the exception

    def test_rsub(self):
        model = Model()
        x = model.add_var("x")
        expr = 5 - x
        assert expr.constant == 5
        assert expr.coeffs[x] == -1


class TestConstraints:
    def test_le_builds_constraint(self):
        model = Model()
        x = model.add_var("x")
        constraint = x <= 3
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE
        assert constraint.rhs == 3

    def test_ge_and_eq(self):
        model = Model()
        x = model.add_var("x")
        assert (x >= 1).sense is Sense.GE
        assert (LinearExpr.from_variable(x) == 2).sense is Sense.EQ

    def test_satisfied_by(self):
        model = Model()
        x = model.add_var("x")
        assert (x <= 3).satisfied_by({x: 2.0})
        assert not (x <= 3).satisfied_by({x: 4.0})
        assert (x >= 1).satisfied_by({x: 1.0})


class TestModel:
    def test_bad_bounds_rejected(self):
        model = Model()
        with pytest.raises(ValidationError):
            model.add_var("x", low=2, high=1)

    def test_foreign_variable_rejected(self):
        model_a, model_b = Model(), Model()
        x = model_a.add_var("x")
        with pytest.raises(ValidationError):
            model_b.add_constraint(x <= 1)

    def test_objective_required_for_compile(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(ValidationError):
            model.compile()

    def test_add_constraint_requires_constraint(self):
        model = Model()
        x = model.add_var("x")
        with pytest.raises(ValidationError):
            model.add_constraint(x + 1)  # an expression, not a constraint


class TestCompile:
    def test_maximize_negates_costs(self):
        model = Model()
        x = model.add_var("x")
        model.maximize(2 * x)
        compiled = model.compile()
        assert compiled.c[x.index] == -2
        assert compiled.objective_sign == -1
        assert compiled.model_objective(-4.0) == 4.0

    def test_ge_rows_are_negated_into_ub(self):
        model = Model()
        x = model.add_var("x")
        model.add_constraint(x >= 2)
        model.minimize(x)
        compiled = model.compile()
        assert compiled.a_ub[0, 0] == -1
        assert compiled.b_ub[0] == -2

    def test_eq_rows_kept_separate(self):
        model = Model()
        x = model.add_var("x")
        y = model.add_var("y")
        model.add_constraint(x + y == 5)
        model.minimize(x)
        compiled = model.compile()
        assert compiled.a_eq.shape == (1, 2)
        assert compiled.b_eq[0] == 5

    def test_binary_flags(self):
        model = Model()
        b = model.add_binary("b")
        c = model.add_var("c")
        model.minimize(b + c)
        compiled = model.compile()
        assert compiled.integer[b.index]
        assert not compiled.integer[c.index]
        assert compiled.high[b.index] == 1.0

    def test_objective_constant_carried(self):
        model = Model()
        x = model.add_var("x")
        model.minimize(x + 10)
        compiled = model.compile()
        assert compiled.model_objective(1.0) == 11.0

    def test_assignment_from_vector(self):
        model = Model()
        x = model.add_var("x")
        y = model.add_var("y")
        model.minimize(x + y)
        assignment = model.assignment_from_vector(np.array([1.0, 2.0]))
        assert assignment[x] == 1.0
        assert assignment[y] == 2.0
