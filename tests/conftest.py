"""Shared fixtures: the paper's running example and instance factories."""

from __future__ import annotations

import random

import pytest

from repro.booldata import BooleanTable, Schema
from repro.core import VisibilityProblem


@pytest.fixture
def paper_schema() -> Schema:
    """The six attributes of the paper's Fig 1 example."""
    return Schema(
        ["ac", "four_door", "turbo", "power_doors", "auto_trans", "power_brakes"]
    )


@pytest.fixture
def paper_log(paper_schema: Schema) -> BooleanTable:
    """The query log Q of Fig 1."""
    return BooleanTable.from_bit_rows(
        paper_schema,
        [
            [1, 1, 0, 0, 0, 0],
            [1, 0, 0, 1, 0, 0],
            [0, 1, 0, 1, 0, 0],
            [0, 0, 0, 1, 0, 1],
            [0, 0, 1, 0, 1, 0],
        ],
    )


@pytest.fixture
def paper_database(paper_schema: Schema) -> BooleanTable:
    """The database D of Fig 1 (used by the SOC-CB-D example)."""
    return BooleanTable.from_bit_rows(
        paper_schema,
        [
            [0, 1, 0, 1, 0, 0],
            [0, 1, 1, 0, 0, 0],
            [1, 0, 0, 1, 1, 1],
            [1, 1, 0, 1, 0, 1],
            [1, 1, 0, 0, 0, 0],
            [0, 1, 0, 1, 0, 0],
            [0, 0, 1, 1, 0, 0],
        ],
    )


@pytest.fixture
def paper_tuple(paper_schema: Schema) -> int:
    """The new car t of Fig 1."""
    return paper_schema.mask_from_bits([1, 1, 0, 1, 1, 1])


@pytest.fixture
def paper_problem(paper_log: BooleanTable, paper_tuple: int) -> VisibilityProblem:
    """The m=3 instance of the paper's Example 1."""
    return VisibilityProblem(paper_log, paper_tuple, 3)


def random_instance(
    rng: random.Random,
    max_width: int = 9,
    max_queries: int = 20,
) -> VisibilityProblem:
    """A small random SOC-CB-QL instance (used by agreement tests)."""
    width = rng.randint(2, max_width)
    schema = Schema.anonymous(width)
    queries = [
        rng.getrandbits(width) or 1 for _ in range(rng.randint(0, max_queries))
    ]
    log = BooleanTable(schema, queries)
    new_tuple = rng.getrandbits(width)
    budget = rng.randint(0, width)
    return VisibilityProblem(log, new_tuple, budget)
