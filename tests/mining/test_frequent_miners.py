"""Tests for the three all-frequent-itemset miners (Apriori, Eclat, FP-growth)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverBudgetExceededError
from repro.mining import TransactionDatabase, apriori, eclat, fp_growth
from repro.mining.apriori import frequent_itemsets_brute_force


@pytest.fixture
def market_basket() -> TransactionDatabase:
    """The classic didactic market-basket example."""
    # items: 0=bread, 1=milk, 2=beer, 3=diapers
    return TransactionDatabase(
        4,
        [
            0b0011,  # bread, milk
            0b1101,  # bread, beer, diapers
            0b1110,  # milk, beer, diapers
            0b1111,  # everything
            0b1011,  # bread, milk, diapers
        ],
    )


MINERS = [apriori, eclat, fp_growth]


@pytest.mark.parametrize("miner", MINERS)
class TestMinersAgree:
    def test_market_basket(self, miner, market_basket):
        expected = frequent_itemsets_brute_force(market_basket, 3)
        assert miner(market_basket, 3) == expected

    def test_threshold_one_returns_all_occurring(self, miner, market_basket):
        result = miner(market_basket, 1)
        assert result == frequent_itemsets_brute_force(market_basket, 1)

    def test_threshold_above_rows_empty(self, miner, market_basket):
        assert miner(market_basket, 6) == {}

    def test_empty_database(self, miner):
        db = TransactionDatabase(3, [])
        assert miner(db, 1) == {}

    def test_threshold_below_one_rejected(self, miner, market_basket):
        with pytest.raises(ValueError):
            miner(market_basket, 0)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_threshold_error_is_validation_error(self, miner, market_basket, bad):
        """Regression: miners used to raise a bare ValueError; entry points
        now raise ValidationError (still a ValueError subclass)."""
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            miner(market_basket, bad)

    def test_supports_are_exact(self, miner, market_basket):
        result = miner(market_basket, 2)
        for itemset, support in result.items():
            assert support == market_basket.support(itemset)

    def test_downward_closure(self, miner, market_basket):
        """Every subset of a frequent itemset is frequent (Apriori property)."""
        result = miner(market_basket, 2)
        for itemset in result:
            sub = itemset & (itemset - 1)  # drop lowest bit
            if sub:
                assert sub in result


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 63), max_size=20),
    st.integers(1, 8),
)
def test_all_miners_match_brute_force(rows, threshold):
    db = TransactionDatabase(6, rows)
    expected = frequent_itemsets_brute_force(db, threshold)
    assert apriori(db, threshold) == expected
    assert eclat(db, threshold) == expected
    assert fp_growth(db, threshold) == expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 63), max_size=15), st.integers(1, 5))
def test_miners_on_dense_complement(rows, threshold):
    """The complemented view is the dense case the paper worries about."""
    db = TransactionDatabase(6, rows).complement()
    expected = frequent_itemsets_brute_force(db, threshold)
    assert apriori(db, threshold) == expected
    assert eclat(db, threshold) == expected
    assert fp_growth(db, threshold) == expected


class TestBudgets:
    def test_apriori_candidate_explosion_guard(self):
        # all-ones rows make every itemset frequent: 2^width - 1 itemsets
        db = TransactionDatabase(18, [(1 << 18) - 1] * 3)
        with pytest.raises(SolverBudgetExceededError):
            apriori(db, 1, max_candidates=1_000)

    def test_apriori_max_level_stops_early(self):
        db = TransactionDatabase(6, [(1 << 6) - 1] * 3)
        result = apriori(db, 1, max_level=2)
        assert max(mask.bit_count() for mask in result) == 2

    def test_eclat_budget_guard(self):
        db = TransactionDatabase(16, [(1 << 16) - 1] * 2)
        with pytest.raises(SolverBudgetExceededError):
            eclat(db, 1, max_itemsets=500)

    def test_fp_growth_budget_guard(self):
        db = TransactionDatabase(16, [(1 << 16) - 1] * 2)
        with pytest.raises(SolverBudgetExceededError):
            fp_growth(db, 1, max_itemsets=500)
