"""Tests for association-rule mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import Schema
from repro.common.errors import ValidationError
from repro.mining import TransactionDatabase
from repro.mining.rules import AssociationRule, describe_rules, mine_rules


@pytest.fixture
def basket() -> TransactionDatabase:
    # item 0 and item 1 almost always together; item 2 independent-ish
    return TransactionDatabase(
        3,
        [0b011, 0b011, 0b011, 0b111, 0b100, 0b101, 0b010],
    )


class TestMineRules:
    def test_strong_pair_found(self, basket):
        rules = mine_rules(basket, min_support=0.2, min_confidence=0.7)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert (0b001, 0b010) in pairs or (0b010, 0b001) in pairs

    def test_statistics_are_correct(self, basket):
        rules = mine_rules(basket, min_support=0.1, min_confidence=0.1)
        for rule in rules:
            union = rule.antecedent | rule.consequent
            n = basket.num_transactions
            assert rule.support == pytest.approx(basket.support(union) / n)
            assert rule.confidence == pytest.approx(
                basket.support(union) / basket.support(rule.antecedent)
            )
            assert rule.lift == pytest.approx(
                rule.confidence / (basket.support(rule.consequent) / n)
            )

    def test_antecedent_consequent_disjoint(self, basket):
        for rule in mine_rules(basket, 0.1, 0.1):
            assert rule.antecedent & rule.consequent == 0
            assert rule.antecedent and rule.consequent

    def test_confidence_threshold_respected(self, basket):
        for rule in mine_rules(basket, 0.1, min_confidence=0.9):
            assert rule.confidence >= 0.9

    def test_sorted_by_lift(self, basket):
        rules = mine_rules(basket, 0.1, 0.1)
        lifts = [rule.lift for rule in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_empty_database(self):
        assert mine_rules(TransactionDatabase(2, []), 0.5, 0.5) == []

    def test_threshold_validation(self, basket):
        with pytest.raises(ValidationError):
            mine_rules(basket, min_support=0.0)
        with pytest.raises(ValidationError):
            mine_rules(basket, min_support=0.5, min_confidence=1.5)

    def test_rule_cap(self, basket):
        with pytest.raises(ValidationError):
            mine_rules(basket, 0.01, 0.01, max_rules=1)


class TestDescribe:
    def test_named_rendering(self, basket):
        schema = Schema(["leather", "sunroof", "turbo"])
        rules = mine_rules(basket, 0.2, 0.7)
        text = describe_rules(rules, schema, limit=3)
        assert "->" in text
        assert "confidence" in text

    def test_empty_rendering(self):
        schema = Schema(["a"])
        assert "no rules" in describe_rules([], schema)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 31), min_size=1, max_size=20))
def test_rule_statistics_property(rows):
    """support <= confidence; lift positive; all stats well-formed."""
    db = TransactionDatabase(5, rows)
    for rule in mine_rules(db, min_support=0.2, min_confidence=0.3, max_rules=5000):
        assert 0 < rule.support <= 1
        assert rule.support <= rule.confidence <= 1
        assert rule.lift > 0


def test_query_log_rules_reflect_workload_structure():
    """Rules mined from a zipf query log surface real co-demands."""
    from repro.data import generate_cars, synthetic_workload
    from repro.mining import TransactionDatabase as TD

    cars = generate_cars(200, seed=9)
    log = synthetic_workload(cars.schema, 600, seed=10, popularity="zipf")
    db = TD.from_boolean_table(log)
    rules = mine_rules(db, min_support=0.01, min_confidence=0.2, max_rules=10_000)
    # zipf workloads concentrate on few attributes -> co-demand rules exist
    assert rules
    assert all(rule.lift > 0 for rule in rules)
