"""Tests for closed frequent itemset mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverBudgetExceededError
from repro.mining import TransactionDatabase, mine_maximal_dfs
from repro.mining.closed import (
    closure_of,
    is_closed,
    mine_closed_dfs,
    mine_closed_reference,
)


@pytest.fixture
def basket() -> TransactionDatabase:
    return TransactionDatabase(
        4,
        [0b0011, 0b0011, 0b0111, 0b1000, 0b1011],
    )


class TestClosure:
    def test_closure_adds_co_occurring_items(self, basket):
        # every transaction containing item 1 also contains item 0
        assert closure_of(basket, 0b010) == 0b011

    def test_closed_set_is_its_own_closure(self, basket):
        assert closure_of(basket, 0b0011) == 0b0011

    def test_empty_support_closure_is_universe(self, basket):
        assert closure_of(basket, 0b1100) == 0b1111

    def test_closure_idempotent(self, basket):
        for itemset in range(16):
            once = closure_of(basket, itemset)
            assert closure_of(basket, once) == once

    def test_closure_is_superset(self, basket):
        for itemset in range(16):
            assert closure_of(basket, itemset) & itemset == itemset


class TestIsClosed:
    def test_infrequent_is_not_closed(self, basket):
        assert not is_closed(basket, 0b0111, 3)

    def test_non_closed_detected(self, basket):
        assert not is_closed(basket, 0b010, 1)  # closure adds item 0

    def test_closed_detected(self, basket):
        assert is_closed(basket, 0b0011, 2)


class TestMiners:
    def test_reference_example(self, basket):
        closed = mine_closed_reference(basket, 2)
        # {0,1} supported by rows 0,1,2,4; {0,1,3} only by row 4 (1 < 2)
        assert closed[0b0011] == 4
        assert 0b1000 in closed  # item 3 alone: support 2
        for itemset in closed:
            assert is_closed(basket, itemset, 2)

    def test_dfs_matches_reference(self, basket):
        for threshold in (1, 2, 3):
            assert mine_closed_dfs(basket, threshold) == mine_closed_reference(
                basket, threshold
            )

    def test_closed_superset_of_maximal(self, basket):
        """Every maximal frequent itemset is closed."""
        maximal = mine_maximal_dfs(basket, 2)
        closed = mine_closed_dfs(basket, 2)
        for itemset, support in maximal.items():
            assert closed.get(itemset) == support

    def test_empty_itemset_closed_when_no_universal_item(self):
        db = TransactionDatabase(2, [0b01, 0b10])
        closed = mine_closed_dfs(db, 1)
        assert closed[0] == 2

    def test_empty_itemset_not_closed_with_universal_item(self):
        db = TransactionDatabase(2, [0b01, 0b11])
        closed = mine_closed_dfs(db, 1)
        assert 0 not in closed

    def test_include_empty_flag(self):
        db = TransactionDatabase(2, [0b01, 0b10])
        assert 0 not in mine_closed_dfs(db, 1, include_empty=False)

    def test_threshold_validation(self, basket):
        with pytest.raises(ValueError):
            mine_closed_dfs(basket, 0)

    def test_threshold_error_is_validation_error(self, basket):
        """Regression: normalized from a bare ValueError to ValidationError."""
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            mine_closed_dfs(basket, 0)

    def test_node_budget(self):
        import random

        rng = random.Random(0)
        db = TransactionDatabase(12, [rng.getrandbits(12) for _ in range(40)])
        with pytest.raises(SolverBudgetExceededError):
            mine_closed_dfs(db, 1, max_nodes=2)

    def test_above_row_count_empty(self, basket):
        assert mine_closed_dfs(basket, 99) == {}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 127), max_size=18), st.integers(1, 6))
def test_dfs_matches_reference_property(rows, threshold):
    db = TransactionDatabase(7, rows)
    if db.num_transactions < threshold:
        assert mine_closed_dfs(db, threshold) == {}
        return
    assert mine_closed_dfs(db, threshold) == mine_closed_reference(db, threshold)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 63), min_size=1, max_size=12), st.integers(1, 4))
def test_closed_count_between_maximal_and_frequent(rows, threshold):
    from repro.mining.apriori import frequent_itemsets_brute_force

    db = TransactionDatabase(6, rows)
    if db.num_transactions < threshold:
        return
    frequent = frequent_itemsets_brute_force(db, threshold)
    closed = mine_closed_dfs(db, threshold, include_empty=False)
    maximal = {m for m in mine_maximal_dfs(db, threshold) if m != 0}
    assert maximal <= set(closed)
    assert set(closed) <= set(frequent) | {0}
    # support of every frequent itemset is recoverable from its closure
    for itemset, support in frequent.items():
        assert closed.get(closure_of(db, itemset)) == support
