"""White-box tests of FP-tree structure and conditional-tree pruning."""

import pytest

from repro.mining import TransactionDatabase, fp_growth
from repro.mining.fptree import FPTree


class TestFpTreeStructure:
    def test_shared_prefix_compresses(self):
        tree = FPTree()
        tree.insert([0, 1, 2])
        tree.insert([0, 1, 3])
        root_children = tree.root.children
        assert list(root_children) == [0]
        node0 = root_children[0]
        assert node0.count == 2
        assert list(node0.children) == [1]

    def test_header_links_chain_same_item(self):
        tree = FPTree()
        tree.insert([0, 2])
        tree.insert([1, 2])
        chain = list(tree.node_chain(2))
        assert len(chain) == 2
        assert all(node.item == 2 for node in chain)

    def test_item_counts_accumulate(self):
        tree = FPTree()
        tree.insert([0], count=3)
        tree.insert([0, 1], count=2)
        assert tree.item_counts[0] == 5
        assert tree.item_counts[1] == 2

    def test_prefix_path(self):
        tree = FPTree()
        tree.insert([0, 1, 2])
        leaf = tree.root.children[0].children[1].children[2]
        assert tree.prefix_path(leaf) == [0, 1]

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert([0, 1, 2], count=2)
        chain = tree.is_single_path()
        assert chain == [(0, 2), (1, 2), (2, 2)]

    def test_branching_is_not_single_path(self):
        tree = FPTree()
        tree.insert([0, 1])
        tree.insert([0, 2])
        assert tree.is_single_path() is None


class TestFpGrowthPaths:
    def test_single_path_combinations(self):
        """A corpus collapsing to one chain exercises the single-path fast
        path: all 2^k - 1 combinations with chain-min counts."""
        db = TransactionDatabase(3, [0b111, 0b111, 0b011, 0b001])
        result = fp_growth(db, 2)
        assert result[0b001] == 4
        assert result[0b011] == 3
        assert result[0b111] == 2

    def test_conditional_tree_pruning(self):
        """Items frequent globally but not in a conditional base must be
        pruned inside the conditional tree."""
        db = TransactionDatabase(
            4,
            [0b0011, 0b0011, 0b0101, 0b0101, 0b1001, 0b1001, 0b0110],
        )
        result = fp_growth(db, 2)
        from repro.mining.apriori import frequent_itemsets_brute_force

        assert result == frequent_itemsets_brute_force(db, 2)

    def test_rows_with_no_frequent_items_skipped(self):
        db = TransactionDatabase(3, [0b100, 0b010, 0b001, 0b001])
        result = fp_growth(db, 2)
        assert result == {0b001: 2}
