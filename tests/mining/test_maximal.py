"""Tests for maximal frequent itemset mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SolverBudgetExceededError
from repro.mining import (
    TransactionDatabase,
    filter_maximal,
    is_maximal_frequent,
    mine_maximal_dfs,
    mine_maximal_reference,
)


class TestFilterMaximal:
    def test_removes_strict_subsets(self):
        itemsets = {0b001: 5, 0b011: 3, 0b111: 2, 0b100: 4}
        maximal = filter_maximal(itemsets)
        assert set(maximal) == {0b111}

    def test_incomparable_sets_kept(self):
        itemsets = {0b011: 3, 0b101: 2}
        assert set(filter_maximal(itemsets)) == {0b011, 0b101}

    def test_preserves_supports(self):
        itemsets = {0b01: 7, 0b11: 4}
        assert filter_maximal(itemsets)[0b11] == 4

    def test_empty(self):
        assert filter_maximal({}) == {}


class TestIsMaximalFrequent:
    def test_infrequent_is_not_maximal(self):
        db = TransactionDatabase(3, [0b001])
        assert not is_maximal_frequent(db, 0b010, 1)

    def test_extendable_is_not_maximal(self):
        db = TransactionDatabase(3, [0b011, 0b011])
        assert not is_maximal_frequent(db, 0b001, 2)  # can add item 1

    def test_true_maximal(self):
        db = TransactionDatabase(3, [0b011, 0b011, 0b100])
        assert is_maximal_frequent(db, 0b011, 2)


class TestDfsMiner:
    def test_simple_example(self):
        db = TransactionDatabase(
            4, [0b0111, 0b0111, 0b1100, 0b1100, 0b0001]
        )
        result = mine_maximal_dfs(db, 2)
        assert result == {0b0111: 2, 0b1100: 2}

    def test_no_frequent_items_yields_empty_itemset(self):
        db = TransactionDatabase(3, [0b001])
        assert mine_maximal_dfs(db, 2) == {}  # fewer rows than threshold? no: 1 row < 2
        db2 = TransactionDatabase(3, [0b001, 0b010])
        # no single item reaches support 2, but the empty itemset does
        assert mine_maximal_dfs(db2, 2) == {0: 2}

    def test_all_identical_rows(self):
        db = TransactionDatabase(4, [0b1010] * 5)
        assert mine_maximal_dfs(db, 3) == {0b1010: 5}

    def test_every_mfi_is_maximal(self):
        db = TransactionDatabase(5, [0b10101, 0b01110, 0b11100, 0b00111, 0b10101])
        for itemset in mine_maximal_dfs(db, 2):
            assert is_maximal_frequent(db, itemset, 2)

    def test_node_budget_guard(self):
        import random

        rng = random.Random(0)
        db = TransactionDatabase(16, [rng.getrandbits(16) for _ in range(60)])
        with pytest.raises(SolverBudgetExceededError):
            mine_maximal_dfs(db, 1, max_nodes=3)

    def test_threshold_validation(self):
        db = TransactionDatabase(2, [1])
        with pytest.raises(ValueError):
            mine_maximal_dfs(db, 0)

    @pytest.mark.parametrize("miner", [mine_maximal_dfs, mine_maximal_reference])
    def test_threshold_error_is_validation_error(self, miner):
        """Regression: normalized from a bare ValueError to ValidationError."""
        from repro.common.errors import ValidationError

        db = TransactionDatabase(2, [1])
        with pytest.raises(ValidationError):
            miner(db, 0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 255), max_size=25), st.integers(1, 8))
def test_dfs_matches_reference(rows, threshold):
    db = TransactionDatabase(8, rows)
    if db.num_transactions < threshold:
        assert mine_maximal_dfs(db, threshold) == {}
        return
    assert mine_maximal_dfs(db, threshold) == mine_maximal_reference(db, threshold)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 63), min_size=1, max_size=15), st.integers(1, 5))
def test_dfs_matches_reference_on_dense_complement(rows, threshold):
    db = TransactionDatabase(6, rows).complement()
    if db.num_transactions < threshold:
        return
    assert mine_maximal_dfs(db, threshold) == mine_maximal_reference(db, threshold)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=2, max_size=25), st.integers(1, 6))
def test_every_frequent_itemset_is_under_some_mfi(rows, threshold):
    """Completeness: the MFI antichain covers the whole frequent border."""
    from repro.mining.apriori import frequent_itemsets_brute_force

    db = TransactionDatabase(8, rows)
    if db.num_transactions < threshold:
        return
    mfis = mine_maximal_dfs(db, threshold)
    for frequent in frequent_itemsets_brute_force(db, threshold):
        assert any(frequent & mfi == frequent for mfi in mfis)
