"""Tests for the random-walk maximal itemset miners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.mining import (
    BottomUpRandomWalkMiner,
    TransactionDatabase,
    TwoPhaseRandomWalkMiner,
    mine_maximal_reference,
)


@pytest.fixture
def dense_view():
    """A dense complemented query log, the paper's target workload."""
    rows = [0b00011, 0b00110, 0b01100, 0b00011, 0b10001]
    return TransactionDatabase(5, rows).complement()


class TestTwoPhaseWalk:
    def test_finds_all_mfis_with_floor(self, dense_view):
        expected = mine_maximal_reference(dense_view, 2)
        mined, stats = TwoPhaseRandomWalkMiner(
            2, seed=0, max_iterations=2000, min_iterations=80
        ).mine(dense_view)
        assert mined == expected
        assert stats.iterations >= 80

    def test_every_result_is_maximal(self, dense_view):
        from repro.mining import is_maximal_frequent

        mined, _ = TwoPhaseRandomWalkMiner(2, seed=1, min_iterations=50).mine(dense_view)
        for itemset in mined:
            assert is_maximal_frequent(dense_view, itemset, 2)

    def test_deterministic_given_seed(self, dense_view):
        first, _ = TwoPhaseRandomWalkMiner(2, seed=3).mine(dense_view)
        second, _ = TwoPhaseRandomWalkMiner(2, seed=3).mine(dense_view)
        assert first == second

    def test_threshold_above_rows_returns_empty(self, dense_view):
        mined, stats = TwoPhaseRandomWalkMiner(10, seed=0).mine(dense_view)
        assert mined == {}
        assert stats.converged

    def test_stopping_rule_reported(self, dense_view):
        _, stats = TwoPhaseRandomWalkMiner(2, seed=0, max_iterations=500).mine(dense_view)
        assert stats.converged
        assert 0.0 <= stats.good_turing_estimate <= 1.0
        assert stats.lattice_steps > 0

    def test_budget_exhaustion_flagged(self, dense_view):
        # max_iterations=1 cannot rediscover anything twice
        _, stats = TwoPhaseRandomWalkMiner(2, seed=0, max_iterations=1).mine(dense_view)
        assert not stats.converged
        assert stats.iterations == 1

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            TwoPhaseRandomWalkMiner(0)
        with pytest.raises(ValidationError):
            TwoPhaseRandomWalkMiner(1, min_discoveries=0)
        with pytest.raises(ValidationError):
            TwoPhaseRandomWalkMiner(1, min_iterations=10, max_iterations=5)


class TestBottomUpWalk:
    def test_finds_all_mfis_with_floor(self, dense_view):
        expected = mine_maximal_reference(dense_view, 2)
        mined, _ = BottomUpRandomWalkMiner(
            2, seed=0, max_iterations=2000, min_iterations=80
        ).mine(dense_view)
        assert mined == expected

    def test_no_frequent_singletons_gives_empty_itemset(self):
        db = TransactionDatabase(3, [0b001, 0b010, 0b100])
        mined, _ = BottomUpRandomWalkMiner(2, seed=0).mine(db)
        assert set(mined) == {0}

    def test_walk_lengths_exceed_two_phase_on_dense_data(self):
        """The paper's argument for the two-phase walk: on dense data the
        MFIs sit near the top of the lattice, so the bottom-up walk must
        traverse many more levels than the top-down phase removes."""
        import random

        rng = random.Random(7)
        width = 14
        # sparse queries (1-2 attributes) -> very dense complement
        queries = [
            (1 << rng.randrange(width)) | (1 << rng.randrange(width))
            for _ in range(40)
        ]
        view = TransactionDatabase(width, queries).complement()
        _, up_stats = BottomUpRandomWalkMiner(
            4, seed=0, max_iterations=60, min_iterations=60
        ).mine(view)
        _, down_stats = TwoPhaseRandomWalkMiner(
            4, seed=0, max_iterations=60, min_iterations=60
        ).mine(view)
        assert up_stats.lattice_steps > down_stats.lattice_steps


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(1, 63), min_size=2, max_size=12), st.integers(1, 4))
def test_two_phase_walk_matches_reference(rows, threshold):
    db = TransactionDatabase(6, rows).complement()
    if db.num_transactions < threshold:
        return
    expected = mine_maximal_reference(db, threshold)
    mined, _ = TwoPhaseRandomWalkMiner(
        threshold, seed=42, max_iterations=3000, min_iterations=100
    ).mine(db)
    assert mined == expected
