"""Tests for transaction databases and the complemented view."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.mining import ComplementedTransactions, TransactionDatabase


class TestConstruction:
    def test_from_rows(self):
        db = TransactionDatabase(3, [0b101, 0b011])
        assert db.num_transactions == 2
        assert list(db) == [0b101, 0b011]

    def test_from_boolean_table(self):
        schema = Schema.anonymous(3)
        table = BooleanTable(schema, [0b110])
        db = TransactionDatabase.from_boolean_table(table)
        assert db.width == 3
        assert db[0] == 0b110

    def test_bad_width_rejected(self):
        with pytest.raises(ValidationError):
            TransactionDatabase(0)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValidationError):
            TransactionDatabase(2, [0b100])


class TestSupport:
    def test_tidsets(self):
        db = TransactionDatabase(3, [0b001, 0b011, 0b100])
        assert db.tidset(0) == 0b011  # rows 0 and 1 contain item 0
        assert db.tidset(1) == 0b010
        assert db.tidset(2) == 0b100

    def test_support_of_empty_itemset_is_row_count(self):
        db = TransactionDatabase(3, [0b001, 0b010])
        assert db.support(0) == 2

    def test_support_counts_supersets(self):
        db = TransactionDatabase(3, [0b011, 0b111, 0b001])
        assert db.support(0b001) == 3
        assert db.support(0b011) == 2
        assert db.support(0b100) == 1

    def test_item_supports(self):
        db = TransactionDatabase(2, [0b01, 0b01, 0b10])
        assert db.item_supports() == [2, 1]

    @given(st.lists(st.integers(0, 31), max_size=20), st.integers(0, 31))
    def test_support_matches_naive_count(self, rows, itemset):
        db = TransactionDatabase(5, rows)
        naive = sum(1 for row in rows if row & itemset == itemset)
        assert db.support(itemset) == naive


class TestComplementedView:
    def test_iteration_yields_complements(self):
        db = TransactionDatabase(3, [0b001, 0b110])
        assert list(db.complement()) == [0b110, 0b001]

    def test_materialize_equals_view(self):
        db = TransactionDatabase(4, [0b0101, 0b0011])
        view = db.complement()
        explicit = view.materialize()
        for itemset in range(16):
            assert view.support(itemset) == explicit.support(itemset)

    def test_support_is_disjoint_count(self):
        """The central identity: support in ~Q == queries disjoint from I."""
        rows = [0b00011, 0b00110, 0b10000]
        db = TransactionDatabase(5, rows)
        view = db.complement()
        for itemset in range(32):
            disjoint = sum(1 for row in rows if row & itemset == 0)
            assert view.support(itemset) == disjoint

    def test_tidset_complementation(self):
        db = TransactionDatabase(2, [0b01, 0b10, 0b11])
        view = db.complement()
        assert view.tidset(0) == 0b010  # only row 1 lacks item 0
        assert view.tidset(1) == 0b001

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=15))
    def test_double_complement_is_identity(self, rows):
        db = TransactionDatabase(4, rows)
        double = ComplementedTransactions(db.complement().materialize())
        for itemset in range(16):
            assert double.support(itemset) == db.support(itemset)
