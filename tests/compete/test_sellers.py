"""SellerSpec validation and derived quantities."""

from __future__ import annotations

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.compete import SellerSpec


def test_effective_budget_caps_at_tuple_size():
    spec = SellerSpec(name="s", new_tuple=0b101, budget=5, ad_id=0)
    assert spec.tuple_size == 2
    assert spec.effective_budget == 2


def test_cost_of_sums_kept_attributes():
    spec = SellerSpec(
        name="s", new_tuple=0b111, budget=2, ad_id=0,
        disclosure_costs=(1.0, 2.0, 4.0),
    )
    assert spec.cost_of(0b101) == pytest.approx(5.0)
    assert spec.cost_of(0) == pytest.approx(0.0)


def test_validate_against_checks_mask_and_cost_width():
    schema = Schema.anonymous(3)
    SellerSpec(name="s", new_tuple=0b111, budget=1, ad_id=0).validate_against(schema)
    with pytest.raises(ValidationError):
        SellerSpec(name="s", new_tuple=0b1111, budget=1, ad_id=0).validate_against(schema)
    with pytest.raises(ValidationError):
        SellerSpec(
            name="s", new_tuple=0b111, budget=1, ad_id=0,
            disclosure_costs=(1.0,),
        ).validate_against(schema)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"budget": -1},
        {"ad_id": -1},
        {"value_per_impression": -0.5},
        {"disclosure_costs": (-1.0,)},
    ],
)
def test_invalid_specs_are_rejected(kwargs):
    base = {"name": "s", "new_tuple": 0b1, "budget": 1, "ad_id": 0}
    with pytest.raises(ValidationError):
        SellerSpec(**{**base, **kwargs})
