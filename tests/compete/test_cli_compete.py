"""The ``python -m repro compete`` subcommand end to end."""

from __future__ import annotations

from repro.cli import EXIT_VALIDATION, main

FAST = ["--chain", "MaxFreqItemSets,ConsumeAttrCumul"]


def test_compete_reports_convergence_and_prices(capsys):
    code = main([
        "compete", "--sellers", "3", "--width", "8", "--traffic", "120",
        "--budget", "3", "--rounds", "12", "--seed", "3", *FAST,
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "compete: 3 sellers" in out
    assert "round   1:" in out
    assert "converged" in out or "cycle" in out
    assert "price of anarchy" in out
    assert "best known" in out


def test_compete_simultaneous_topk_revenue(capsys):
    code = main([
        "compete", "--sellers", "2", "--width", "6", "--traffic", "80",
        "--budget", "2", "--rounds", "8", "--schedule", "simultaneous",
        "--payoff", "revenue", "--cost-scale", "0.5", "--page-size", "1",
        "--jobs", "2", "--seed", "5", "--no-analytics", *FAST,
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "schedule simultaneous" in out
    assert "payoff revenue" in out
    assert "top-1" in out
    assert "price of anarchy" not in out  # --no-analytics


def test_compete_rejects_bad_chain(capsys):
    code = main([
        "compete", "--chain", ",", "--traffic", "10", "--width", "4",
    ])
    assert code == EXIT_VALIDATION


def test_compete_telemetry_metrics_out(tmp_path, capsys):
    out_file = tmp_path / "metrics.prom"
    code = main([
        "compete", "--sellers", "2", "--width", "6", "--traffic", "60",
        "--budget", "2", "--rounds", "6", "--seed", "1", "--no-analytics",
        "--metrics-out", str(out_file), *FAST,
    ])
    assert code == 0
    rendered = out_file.read_text()
    assert "repro_compete_rounds_total" in rendered
    assert "repro_compete_converged" in rendered
