"""Seeded scenario generation: the determinism contract."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.compete import make_scenario


def test_same_seed_reproduces_the_scenario_bit_for_bit():
    first = make_scenario(10, 4, 200, seed=42, budget=3, cost_scale=1.0)
    second = make_scenario(10, 4, 200, seed=42, budget=3, cost_scale=1.0)
    assert first.traffic.rows == second.traffic.rows
    assert first.sellers == second.sellers


def test_different_seeds_differ():
    first = make_scenario(10, 4, 200, seed=1)
    second = make_scenario(10, 4, 200, seed=2)
    assert (
        first.traffic.rows != second.traffic.rows
        or first.sellers != second.sellers
    )


def test_traffic_and_seller_streams_are_decoupled():
    """Changing the traffic size must not perturb the seller draw."""
    small = make_scenario(10, 3, 50, seed=9)
    large = make_scenario(10, 3, 500, seed=9)
    assert [spec.new_tuple for spec in small.sellers] == [
        spec.new_tuple for spec in large.sellers
    ]


def test_scenario_shape_and_defaults():
    scenario = make_scenario(8, 2, 30, seed=0)
    assert scenario.schema.width == 8
    assert len(scenario.traffic) == 30
    assert len(scenario.sellers) == 2
    for index, spec in enumerate(scenario.sellers):
        assert spec.ad_id == index
        assert spec.budget == 4  # width // 2
        assert spec.disclosure_costs == ()  # cost_scale defaults to 0
        assert 0 < spec.new_tuple < (1 << 8)


def test_cost_scale_draws_bounded_costs():
    scenario = make_scenario(8, 2, 10, seed=0, cost_scale=0.25)
    for spec in scenario.sellers:
        assert len(spec.disclosure_costs) == 8
        assert all(0.0 <= cost < 0.25 for cost in spec.disclosure_costs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"width": 0},
        {"sellers": 0},
        {"traffic_size": -1},
        {"cost_scale": -0.5},
    ],
)
def test_bad_scenario_parameters_are_rejected(kwargs):
    base = {"width": 4, "sellers": 2, "traffic_size": 10}
    with pytest.raises(ValidationError):
        make_scenario(**{**base, **kwargs})
