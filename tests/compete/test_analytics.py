"""Equilibrium analytics: the price of selfish attribute selection."""

from __future__ import annotations

import json

import pytest

from repro.booldata.schema import Schema
from repro.booldata.table import BooleanTable
from repro.compete import (
    CompeteConfig,
    SellerSpec,
    analyze_equilibria,
    cooperative_optimum,
    make_scenario,
)
from tests.compete.conftest import FAST_CHAIN


@pytest.mark.parametrize("seed", [3, 7])
def test_ratios_are_at_least_one_on_seeded_scenarios(seed):
    scenario = make_scenario(8, 3, 150, seed=seed, budget=3)
    config = CompeteConfig(schedule="sequential", max_rounds=15, chain=FAST_CHAIN)
    report = analyze_equilibria(scenario.sellers, scenario.traffic, config)
    assert report.converged_games >= 1
    assert report.price_of_anarchy is not None
    assert report.price_of_anarchy >= 1.0
    assert 1.0 <= report.price_of_stability <= report.price_of_anarchy
    # the cooperative bound dominates every reached equilibrium
    assert all(
        report.cooperative_welfare >= welfare
        for welfare in report.equilibrium_welfares
    )


def test_cooperative_optimum_splits_a_partitioned_market():
    """Two sellers, disjoint demand: the planner covers everything."""
    schema = Schema.anonymous(2)
    traffic = BooleanTable(schema, [0b01] * 3 + [0b10] * 2)
    sellers = (
        SellerSpec(name="s0", new_tuple=0b11, budget=1, ad_id=0),
        SellerSpec(name="s1", new_tuple=0b11, budget=1, ad_id=1),
    )
    config = CompeteConfig(chain=FAST_CHAIN)
    masks, welfare = cooperative_optimum(sellers, traffic, config)
    assert welfare == 5.0
    assert sorted(masks) == [0b01, 0b10]


def test_extra_candidates_can_only_improve_the_bound():
    scenario = make_scenario(8, 2, 100, seed=5, budget=3)
    config = CompeteConfig(chain=FAST_CHAIN)
    _, base = cooperative_optimum(scenario.sellers, scenario.traffic, config)
    full = (1 << 8) - 1
    _, boosted = cooperative_optimum(
        scenario.sellers, scenario.traffic, config,
        extra_candidates=[(full, full)],
    )
    assert boosted >= base


def test_cycling_game_reports_no_equilibrium():
    schema = Schema.anonymous(2)
    traffic = BooleanTable(schema, [0b01] * 3 + [0b10] * 2)
    sellers = (
        SellerSpec(name="s0", new_tuple=0b11, budget=1, ad_id=0),
        SellerSpec(name="s1", new_tuple=0b11, budget=1, ad_id=1),
    )
    config = CompeteConfig(
        schedule="simultaneous", max_rounds=10, chain=FAST_CHAIN
    )
    report = analyze_equilibria(sellers, traffic, config)
    assert report.cycling_games == 1
    assert report.equilibrium_welfares == ()
    assert report.price_of_anarchy is None
    assert report.price_of_stability is None
    # the report still serializes with the cycle evidence on board
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["cycling_games"] == 1


def test_report_round_trips_to_json(small_scenario):
    config = CompeteConfig(schedule="sequential", max_rounds=10, chain=FAST_CHAIN)
    report = analyze_equilibria(
        small_scenario.sellers, small_scenario.traffic, config, restarts=2
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["price_of_anarchy"] >= 1.0
    assert len(report.games) == 2
