"""Engine behavior: convergence, cycles, anytime answers, determinism.

The two headline equivalences of the subsystem live here:

* a single-seller game round is **bit-identical** to the serial
  :meth:`repro.simulate.Marketplace.post_optimized_ad` path;
* ``jobs=1`` and ``jobs=N`` simultaneous schedules produce identical
  trajectories (the parallel fan-out is a pure function per seller).
"""

from __future__ import annotations

import pytest

from repro.booldata.schema import Schema
from repro.booldata.table import BooleanTable
from repro.common.errors import ValidationError
from repro.compete import CompeteConfig, SellerSpec, make_scenario, play
from repro.obs.recorder import Recorder, recording
from repro.runtime import make_harness
from repro.simulate.marketplace import Marketplace
from repro.stream.log import StreamingLog
from tests.compete.conftest import FAST_CHAIN


def test_sequential_game_converges_on_seeded_scenario(small_scenario):
    config = CompeteConfig(schedule="sequential", max_rounds=15, chain=FAST_CHAIN)
    result = play(small_scenario.sellers, small_scenario.traffic, config)
    assert result.converged
    assert result.cycle is None
    assert result.final.changed == 0
    # the fixed point is reproducible bit-for-bit
    replay = play(small_scenario.sellers, small_scenario.traffic, config)
    assert [r.masks for r in replay.rounds] == [r.masks for r in result.rounds]


@pytest.mark.parametrize("seed", [0, 7, 21])
def test_single_seller_round_bit_identical_to_marketplace(seed):
    """Property: alone in the game == the serial posting path, exactly."""
    scenario = make_scenario(9, 1, 180, seed=seed, budget=4)
    spec = scenario.sellers[0]
    harness = make_harness(FAST_CHAIN)
    market = Marketplace(scenario.schema)
    _, outcome = market.post_optimized_ad(
        spec.new_tuple, spec.budget, scenario.traffic, harness
    )
    game = play(
        (spec,), scenario.traffic,
        CompeteConfig(max_rounds=3, chain=FAST_CHAIN),
    )
    assert game.rounds[0].masks[0] == outcome.solution.keep_mask
    assert game.converged  # nothing to respond to: round 2 repeats round 1


@pytest.mark.parametrize("schedule", ["sequential", "simultaneous"])
def test_jobs_one_and_many_produce_identical_trajectories(
    small_scenario, schedule
):
    serial = play(
        small_scenario.sellers, small_scenario.traffic,
        CompeteConfig(schedule=schedule, max_rounds=6, jobs=1, chain=FAST_CHAIN),
    )
    forked = play(
        small_scenario.sellers, small_scenario.traffic,
        CompeteConfig(schedule=schedule, max_rounds=6, jobs=2, chain=FAST_CHAIN),
    )
    assert [r.masks for r in serial.rounds] == [r.masks for r in forked.rounds]
    assert [r.payoffs for r in serial.rounds] == [r.payoffs for r in forked.rounds]


def _oscillator():
    """Two identical sellers, budget 1, asymmetric demand: (a,a)->(b,b)->..."""
    schema = Schema.anonymous(2)
    traffic = BooleanTable(schema, [0b01] * 3 + [0b10] * 2)
    sellers = (
        SellerSpec(name="s0", new_tuple=0b11, budget=1, ad_id=0),
        SellerSpec(name="s1", new_tuple=0b11, budget=1, ad_id=1),
    )
    return schema, traffic, sellers


def test_simultaneous_schedule_detects_the_cycle():
    _, traffic, sellers = _oscillator()
    result = play(
        sellers, traffic,
        CompeteConfig(schedule="simultaneous", max_rounds=10, chain=FAST_CHAIN),
    )
    assert not result.converged
    assert result.cycle == (1, 3)
    assert result.cycle_length == 2
    assert len(result.rounds) == 3  # stopped at the revisit, not the cap


def test_sequential_schedule_converges_where_simultaneous_cycles():
    """The congestion-game guarantee: sequential responses reach a NE."""
    _, traffic, sellers = _oscillator()
    result = play(
        sellers, traffic,
        CompeteConfig(schedule="sequential", max_rounds=10, chain=FAST_CHAIN),
    )
    assert result.converged
    # at the fixed point the sellers split the market, one per attribute
    assert sorted(result.final.masks) == [0b01, 0b10]


def test_round_cap_keeps_best_known(small_scenario):
    result = play(
        small_scenario.sellers, small_scenario.traffic,
        CompeteConfig(schedule="sequential", max_rounds=1, chain=FAST_CHAIN),
    )
    assert not result.converged and result.cycle is None
    assert len(result.rounds) == 1
    best = result.best_known
    assert best.welfare == max(r.welfare for r in result.rounds)


def test_drifting_traffic_resnapshots_every_round(small_scenario):
    log = StreamingLog(small_scenario.schema)
    log.extend(small_scenario.traffic.rows)
    sizes = []

    def drift(round_number: int) -> None:
        sizes.append(len(log.snapshot()))
        log.extend(small_scenario.traffic.rows[:10])

    result = play(
        small_scenario.sellers, log,
        CompeteConfig(schedule="sequential", max_rounds=4, chain=FAST_CHAIN),
        before_round=drift,
    )
    log.close()
    assert result.stats["streaming"] is True
    # the hook ran before every played round and the window kept growing
    assert len(sizes) == len(result.rounds)
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]


def test_round_metrics_and_verdict_events_are_journaled(small_scenario):
    recorder = Recorder()
    with recording(recorder):
        result = play(
            small_scenario.sellers, small_scenario.traffic,
            CompeteConfig(schedule="sequential", max_rounds=15, chain=FAST_CHAIN),
        )
    rendered = recorder.export_prometheus()
    assert "repro_compete_rounds_total" in rendered
    assert "repro_compete_round_seconds" in rendered
    assert "repro_compete_converged 1" in rendered
    kinds = [event.kind for event in recorder.journal.tail()]
    assert "compete.converged" in kinds
    assert result.converged


def test_validation_rejects_bad_games(small_scenario):
    sellers = small_scenario.sellers
    with pytest.raises(ValidationError):
        play((), small_scenario.traffic, CompeteConfig(chain=FAST_CHAIN))
    duplicate = (sellers[0], sellers[0])
    with pytest.raises(ValidationError):
        play(duplicate, small_scenario.traffic, CompeteConfig(chain=FAST_CHAIN))
    with pytest.raises(ValidationError):
        play(
            sellers, small_scenario.traffic,
            CompeteConfig(chain=FAST_CHAIN), order=[0, 0, 1],
        )
    with pytest.raises(ValidationError):
        CompeteConfig(schedule="swirl")
    with pytest.raises(ValidationError):
        CompeteConfig(max_rounds=0)
    with pytest.raises(ValidationError):
        CompeteConfig(payoff="fame")


def test_result_serializes_to_plain_json_types(small_scenario):
    import json

    result = play(
        small_scenario.sellers, small_scenario.traffic,
        CompeteConfig(schedule="sequential", max_rounds=5, chain=FAST_CHAIN),
    )
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["converged"] is True
    assert payload["rounds"][0]["round"] == 1
