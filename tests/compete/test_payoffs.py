"""Payoff utilities and their deterministic refinements."""

from __future__ import annotations

import pytest

from repro.booldata.schema import Schema
from repro.booldata.table import BooleanTable
from repro.common.errors import ValidationError
from repro.compete import (
    DiversityPayoff,
    ImpressionsPayoff,
    RevenuePayoff,
    SellerSpec,
    TieSplitModel,
    make_payoff,
)


@pytest.fixture
def schema():
    return Schema.anonymous(4)


@pytest.fixture
def traffic(schema):
    # demand concentrates on a0 and a1; a3 is never asked for
    return BooleanTable(schema, [0b0001] * 4 + [0b0010] * 3 + [0b0011] * 2)


def test_impressions_payoff_is_raw_impressions(schema, traffic):
    model = TieSplitModel()
    spec = SellerSpec(name="s", new_tuple=0b0011, budget=2, ad_id=0)
    payoff = ImpressionsPayoff()
    assert payoff.utility(model, traffic, 0b0011, [], spec) == pytest.approx(9.0)
    # refinement is a no-op: the harness answer is already optimal
    assert payoff.refine(model, traffic, 0b0011, [], spec) == 0b0011


def test_revenue_refinement_hides_costly_useless_attributes(schema, traffic):
    """Attribute hiding: a padded attribute with no demand but a cost
    is dropped by the greedy drop-only local search."""
    model = TieSplitModel()
    spec = SellerSpec(
        name="s", new_tuple=0b1011, budget=3, ad_id=0,
        disclosure_costs=(0.1, 0.1, 0.1, 5.0),
    )
    payoff = RevenuePayoff()
    # the solver pads to the full budget: mask carries the dead a3
    padded = 0b1011
    refined = payoff.refine(model, traffic, padded, [], spec)
    assert refined == 0b0011  # a3 hidden: it costs 5 and earns nothing
    assert payoff.utility(model, traffic, refined, [], spec) > payoff.utility(
        model, traffic, padded, [], spec
    )


def test_revenue_keeps_attributes_that_pay_for_themselves(schema, traffic):
    model = TieSplitModel()
    spec = SellerSpec(
        name="s", new_tuple=0b0011, budget=2, ad_id=0,
        disclosure_costs=(0.5, 0.5, 0.0, 0.0),
    )
    refined = RevenuePayoff().refine(model, traffic, 0b0011, [], spec)
    assert refined == 0b0011  # each attribute earns more than it costs


def test_diversity_refinement_dodges_a_crowded_attribute(schema):
    """With a rival camped on a0 and equal demand elsewhere, the
    diversity swap search moves off the shared attribute."""
    traffic = BooleanTable(
        Schema.anonymous(4), [0b0001] * 3 + [0b0010] * 3
    )
    model = TieSplitModel()
    spec = SellerSpec(name="s", new_tuple=0b0011, budget=1, ad_id=0)
    payoff = DiversityPayoff(penalty=2.0)
    rivals = [(1, 0b0001)]
    refined = payoff.refine(model, traffic, 0b0001, rivals, spec)
    assert refined == 0b0010  # same impressions, no overlap penalty
    assert (
        payoff.utility(model, traffic, refined, rivals, spec)
        > payoff.utility(model, traffic, 0b0001, rivals, spec)
    )


def test_diversity_penalty_validation():
    with pytest.raises(ValidationError):
        DiversityPayoff(penalty=-0.1)


def test_make_payoff_dispatch():
    assert make_payoff("impressions").name == "impressions"
    assert make_payoff("revenue").name == "revenue"
    diversity = make_payoff("diversity", diversity_penalty=1.5)
    assert diversity.penalty == 1.5
    with pytest.raises(ValidationError):
        make_payoff("fame")
