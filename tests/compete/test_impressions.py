"""Impression models cross-checked against a real Marketplace replay."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.compete import TieSplitModel, TopKModel, make_impression_model
from repro.compete.impressions import WEIGHT_CAP, tie_split_weights
from repro.data.workload import synthetic_workload
from repro.retrieval.scoring import AttributeCountScore
from repro.simulate.marketplace import Marketplace

WIDTH = 6
MASKS = [0b110100, 0b011010, 0b110110]


@pytest.fixture
def traffic():
    from repro.booldata.schema import Schema

    return synthetic_workload(Schema.anonymous(WIDTH), 120, seed=11)


def test_tie_split_weights_exact_within_cap():
    assert tie_split_weights([1, 2, 3]) == [6, 3, 2]
    # gcd-normalized: an uncontested log collapses to unit weights
    assert tie_split_weights([2, 2]) == [1, 1]
    assert tie_split_weights([1, 1, 1]) == [1, 1, 1]


def test_tie_split_weights_round_beyond_cap():
    denominators = list(range(1, 14))  # lcm(1..13) >> WEIGHT_CAP
    weights = tie_split_weights(denominators)
    assert all(weight >= 1 for weight in weights)
    assert max(weights) <= WEIGHT_CAP
    # monotone: more contention never weighs more
    assert all(a >= b for a, b in zip(weights, weights[1:]))


def test_tie_split_weights_reject_bad_denominator():
    with pytest.raises(ValidationError):
        tie_split_weights([1, 0])


def test_tie_split_single_ad_matches_marketplace(traffic):
    """With no rivals, fractional impressions equal the Boolean replay."""
    model = TieSplitModel()
    market = Marketplace(traffic.schema)
    ad_id = market.post_ad(MASKS[0])
    assert model.impressions(traffic, MASKS[0], [], ad_id) == pytest.approx(
        float(market.impressions_of(ad_id, traffic))
    )


def test_tie_split_impressions_sum_to_welfare(traffic):
    """Each matched query splits exactly one unit across its matchers."""
    model = TieSplitModel()
    total = sum(
        model.impressions(
            traffic, mask,
            [(j, other) for j, other in enumerate(MASKS) if j != i],
            i,
        )
        for i, mask in enumerate(MASKS)
    )
    assert total == pytest.approx(model.welfare(traffic, MASKS))


def test_tie_split_uncontested_problem_reuses_the_table(traffic):
    problem = TieSplitModel().best_response_problem(traffic, 0b111111, 3, [], 0)
    assert problem.log is traffic  # the single-seller bit-identity anchor


def test_top_k_impressions_replay_the_marketplace(traffic):
    """Model impressions == a Marketplace(top-k) replay, ad for ad."""
    for page_size in (1, 2):
        model = TopKModel(page_size)
        market = Marketplace(
            traffic.schema, page_size=page_size, scoring=AttributeCountScore()
        )
        for mask in MASKS:
            market.post_ad(mask)
        replay = market.run_workload(traffic)
        for ad_id, mask in enumerate(MASKS):
            rivals = [(j, m) for j, m in enumerate(MASKS) if j != ad_id]
            assert model.impressions(traffic, mask, rivals, ad_id) == pytest.approx(
                float(replay.get(ad_id, 0))
            ), (page_size, ad_id)
        assert model.welfare(traffic, MASKS) == pytest.approx(
            float(sum(replay.values()))
        )


def test_top_k_saturated_queries_are_filtered(traffic):
    """A query locked up by page_size better rivals leaves the problem."""
    model = TopKModel(1)
    wide_rival = (1 << WIDTH) - 1  # max score, matches free queries only
    problem = model.best_response_problem(
        traffic, 0b110100, 2, [(1, wide_rival)], 0
    )
    saturated = sum(1 for q in traffic if q & wide_rival == q)
    assert len(problem.log) == len(traffic) - saturated


def test_make_impression_model_dispatch():
    assert isinstance(make_impression_model(None), TieSplitModel)
    assert isinstance(make_impression_model(2), TopKModel)
    with pytest.raises(ValidationError):
        make_impression_model(0)
