"""Shared fixtures for the competitive-game tests.

Tests run the cheap exact chain (``MaxFreqItemSets`` primary) instead of
the default ILP-first chain: it returns the same exact optima on these
toy widths in a fraction of the time, keeping every game deterministic
and the suite fast.
"""

from __future__ import annotations

import pytest

from repro.compete import CompeteConfig, Scenario, make_scenario

#: exact on toy instances, ~1000x cheaper than the ILP-first default
FAST_CHAIN = ("MaxFreqItemSets", "ConsumeAttrCumul")


@pytest.fixture
def fast_config() -> CompeteConfig:
    return CompeteConfig(chain=FAST_CHAIN)


@pytest.fixture
def small_scenario() -> Scenario:
    """Three sellers over 8 attributes and 150 queries, seed-pinned."""
    return make_scenario(8, 3, 150, seed=3, budget=3)
