"""Worker-pool plumbing: config validation, inline/fork parity, stragglers."""

import os
import time

import pytest

from repro.common.errors import DeadlineExceededError, ValidationError
from repro.obs import Recorder, recording
from repro.parallel import ParallelConfig, WorkerPool


# Task functions must be top-level so they pickle by reference.
def square(context, payload):
    return (context or 0) + payload * payload


def flaky(context, payload):
    if payload == "boom":
        raise RuntimeError("injected")
    return ("ok", payload)


def sleepy(context, payload):
    if payload == "slow":
        time.sleep(1.0)
    return ("done", payload)


def degraded(context, payload):
    return ("degraded", payload)


class TestParallelConfig:
    def test_defaults_resolve_to_cpu_count(self):
        config = ParallelConfig()
        assert config.resolved_jobs() == (os.cpu_count() or 1)
        assert config.resolved_shards() == config.resolved_jobs()

    def test_explicit_values_win(self):
        config = ParallelConfig(jobs=2, shards=5, chunk_size=3)
        assert config.resolved_jobs() == 2
        assert config.resolved_shards() == 5
        assert config.resolved_chunk_size(100) == 3

    def test_default_chunking_targets_four_tasks_per_worker(self):
        config = ParallelConfig(jobs=2)
        assert config.resolved_chunk_size(80) == 10
        assert config.resolved_chunk_size(1) == 1
        assert config.resolved_chunk_size(0) == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"jobs": -1},
            {"jobs": True},
            {"shards": 0},
            {"chunk_size": 0},
            {"deadline_ms": -5.0},
            {"straggler_timeout_s": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ParallelConfig(**kwargs)


class TestWorkerPool:
    def test_inline_map_runs_without_processes(self):
        with WorkerPool(1, context=10) as pool:
            report = pool.map(square, [1, 2, 3])
        assert report.results == [11, 14, 19]
        assert report.statuses == ["completed"] * 3
        assert report.stragglers == 0

    def test_pool_matches_inline(self):
        with WorkerPool(1, context=5) as pool:
            inline = pool.map(square, list(range(8))).results
        with WorkerPool(2, context=5) as pool:
            forked = pool.map(square, list(range(8))).results
        assert forked == inline

    def test_inline_failure_uses_fallback(self):
        with WorkerPool(1) as pool:
            report = pool.map(flaky, ["a", "boom", "b"], fallback=degraded)
        assert report.results == [("ok", "a"), ("degraded", "boom"), ("ok", "b")]
        assert report.statuses == ["completed", "failed", "completed"]
        assert report.failed == 1

    def test_inline_failure_without_fallback_raises(self):
        with WorkerPool(1) as pool:
            with pytest.raises(RuntimeError):
                pool.map(flaky, ["boom"])

    def test_pool_failure_uses_fallback(self):
        with WorkerPool(2) as pool:
            report = pool.map(flaky, ["a", "boom"], fallback=degraded)
        assert sorted(report.statuses) == ["completed", "failed"]
        assert ("degraded", "boom") in report.results

    def test_straggler_degrades_to_fallback(self):
        with recording(Recorder()) as recorder:
            with WorkerPool(2) as pool:
                report = pool.map(
                    sleepy, ["fast", "slow"], timeout_s=0.4, fallback=degraded
                )
        assert report.results[0] == ("done", "fast")
        assert report.results[1] == ("degraded", "slow")
        assert report.statuses == ["completed", "straggler"]
        assert report.stragglers == 1
        assert recorder.metrics.counter_total("repro_parallel_stragglers_total") == 1.0
        assert recorder.metrics.counter_total("repro_parallel_tasks_total") == 2.0

    def test_straggler_without_fallback_raises(self):
        with WorkerPool(2) as pool:
            with pytest.raises(DeadlineExceededError):
                pool.map(sleepy, ["slow"], timeout_s=0.2)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)
        with pytest.raises(ValidationError):
            WorkerPool(2, start_method="forkserver")

    def test_dispatch_span_and_task_metrics_recorded(self):
        with recording(Recorder()) as recorder:
            with WorkerPool(1, context=0) as pool:
                pool.map(square, [1, 2])
        assert recorder.tracer.spans_named("parallel.dispatch")
        assert recorder.metrics.counter_total("repro_parallel_tasks_total") == 2.0
