"""Shard-parallel inventory results must be identical to the serial engine.

The property the tentpole promises: for seeded random logs, any shard
count and ``jobs in {1, 2, 4}``, ``optimize_inventory_parallel`` (no
deadline) returns exactly the keep-masks, objective counts and
algorithm labels of the serial ``optimize_inventory``.
"""

import random

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import random_mask
from repro.common.errors import ValidationError
from repro.core import make_solver
from repro.data import synthetic_workload
from repro.obs import Recorder, recording
from repro.parallel import ParallelConfig, optimize_inventory_parallel
from repro.variants.batch import optimize_inventory

SEEDS = [13, 41, 97]


def random_inventory(seed: int):
    rng = random.Random(seed)
    width = rng.choice([10, 14, 18])
    schema = Schema.anonymous(width)
    log = synthetic_workload(schema, rng.randrange(60, 260), seed=seed)
    tuples = [
        random_mask(width, rng.randrange(4, max(5, (2 * width) // 3)), rng)
        for _ in range(rng.randrange(5, 12))
    ]
    budget = rng.randrange(2, 4)
    return log, tuples, budget


def assert_reports_identical(parallel, serial):
    assert [s.keep_mask for s in parallel.solutions] == [
        s.keep_mask for s in serial.solutions
    ]
    assert [s.satisfied for s in parallel.solutions] == [
        s.satisfied for s in serial.solutions
    ]
    assert [s.algorithm for s in parallel.solutions] == [
        s.algorithm for s in serial.solutions
    ]
    assert parallel.total_visibility == serial.total_visibility


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", [1, 3, 5])
    def test_inline_matches_serial_across_shard_counts(self, seed, shards):
        log, tuples, budget = random_inventory(seed)
        serial = optimize_inventory(log, tuples, budget)
        parallel = optimize_inventory_parallel(
            log, tuples, budget, config=ParallelConfig(jobs=1, shards=shards)
        )
        assert_reports_identical(parallel, serial)

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_process_pools_match_serial(self, jobs):
        log, tuples, budget = random_inventory(SEEDS[0])
        serial = optimize_inventory(log, tuples, budget)
        parallel = optimize_inventory_parallel(
            log, tuples, budget, config=ParallelConfig(jobs=jobs, shards=3)
        )
        assert_reports_identical(parallel, serial)

    def test_custom_solver_matches_serial(self):
        log, tuples, budget = random_inventory(SEEDS[1])
        solver = make_solver("ConsumeAttrCumul")
        serial = optimize_inventory(log, tuples, budget, solver=solver)
        parallel = optimize_inventory_parallel(
            log, tuples, budget, solver=make_solver("ConsumeAttrCumul"),
            config=ParallelConfig(jobs=1, shards=2),
        )
        assert_reports_identical(parallel, serial)

    def test_absolute_index_threshold_matches_serial(self):
        log, tuples, budget = random_inventory(SEEDS[2])
        serial = optimize_inventory(log, tuples, budget, index_threshold=5)
        parallel = optimize_inventory_parallel(
            log, tuples, budget, index_threshold=5,
            config=ParallelConfig(jobs=1, shards=4),
        )
        assert_reports_identical(parallel, serial)

    def test_generous_deadline_still_matches(self):
        """A deadline that never fires must not change the answers."""
        log, tuples, budget = random_inventory(SEEDS[0])
        serial = optimize_inventory(log, tuples, budget)
        parallel = optimize_inventory_parallel(
            log, tuples, budget,
            config=ParallelConfig(jobs=1, deadline_ms=60_000),
        )
        assert_reports_identical(parallel, serial)
        assert all(
            s.stats.get("outcome_status") == "exact" for s in parallel.solutions
        )


class TestDegradation:
    def test_tight_deadline_degrades_not_crashes(self):
        log, tuples, budget = random_inventory(SEEDS[1])
        parallel = optimize_inventory_parallel(
            log, tuples, budget, config=ParallelConfig(jobs=1, deadline_ms=0.0)
        )
        # every listing still gets a valid answer, flagged by outcome status
        assert len(parallel.solutions) == len(tuples)
        for solution in parallel.solutions:
            assert solution.stats.get("outcome_status") in (
                "exact", "fallback", "anytime", "failed"
            )


class TestValidation:
    def test_empty_inventory_rejected(self):
        log, _, _ = random_inventory(SEEDS[0])
        with pytest.raises(ValidationError):
            optimize_inventory_parallel(log, [], 2)

    def test_negative_budget_rejected(self):
        log, tuples, _ = random_inventory(SEEDS[0])
        with pytest.raises(ValidationError):
            optimize_inventory_parallel(log, tuples, -1)

    @pytest.mark.parametrize("bad", [0, -3, 0.0, 1.5, True])
    def test_bad_index_threshold_rejected(self, bad):
        log, tuples, budget = random_inventory(SEEDS[0])
        with pytest.raises(ValidationError):
            optimize_inventory_parallel(log, tuples, budget, index_threshold=bad)


class TestObservability:
    def test_pool_metrics_and_merge_span_recorded(self):
        log, tuples, budget = random_inventory(SEEDS[2])
        with recording(Recorder()) as recorder:
            optimize_inventory_parallel(
                log, tuples, budget, config=ParallelConfig(jobs=1, shards=2)
            )
        assert recorder.metrics.counter_total("repro_parallel_tasks_total") >= 1.0
        assert recorder.tracer.spans_named("parallel.dispatch")
        assert recorder.tracer.spans_named("parallel.merge")

    def test_empty_log_inventory(self):
        schema = Schema.anonymous(6)
        log = BooleanTable(schema, [])
        report = optimize_inventory_parallel(
            log, [0b111, 0b11], 2, config=ParallelConfig(jobs=1)
        )
        assert [s.satisfied for s in report.solutions] == [0, 0]
