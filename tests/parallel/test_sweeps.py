"""Experiment fan-out: same results as the serial loop, in order.

Visibility experiments (fig7, fig9) are deterministic, so their rendered
tables must match the serial run exactly.  Timing experiments (fig6)
carry wall-clock measurements, so only their structure is compared.
"""

import pytest

from repro.common.errors import ValidationError
from repro.experiments import ExperimentScale, run_experiment
from repro.parallel import run_experiments_parallel


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    return ExperimentScale(
        name="tiny",
        cars=150,
        cars_per_point=1,
        real_queries=30,
        synthetic_queries=40,
        log_sizes=(20, 40),
        attribute_counts=(8,),
        ilp_max_log=20,
        budgets=(2,),
        seed=1,
    )


def test_results_match_serial_in_order(tiny_scale):
    names = ["fig7", "fig9"]
    serial = [run_experiment(name, tiny_scale) for name in names]
    parallel = run_experiments_parallel(names, tiny_scale, jobs=1)
    assert [result.name for result in parallel] == names
    assert [result.to_text() for result in parallel] == [
        result.to_text() for result in serial
    ]


def test_timing_experiment_keeps_structure(tiny_scale):
    serial = run_experiment("fig6", tiny_scale)
    (parallel,) = run_experiments_parallel(["fig6"], tiny_scale, jobs=1)
    assert parallel.name == serial.name
    assert parallel.x_values == serial.x_values
    assert list(parallel.series) == list(serial.series)


def test_process_fanout_matches_serial(tiny_scale):
    serial = run_experiment("fig7", tiny_scale)
    (parallel,) = run_experiments_parallel(["fig7"], tiny_scale, jobs=2)
    assert parallel.to_text() == serial.to_text()


def test_unknown_experiment_rejected(tiny_scale):
    with pytest.raises(ValidationError):
        run_experiments_parallel(["fig99"], tiny_scale)
