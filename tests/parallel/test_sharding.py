"""Shard map-reduce counting must equal the serial engine bit-for-bit."""

import random

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import random_mask
from repro.common.errors import ValidationError
from repro.core import VisibilityProblem
from repro.data import synthetic_workload
from repro.parallel import ShardedLog, WorkerPool, shard_bounds

SEEDS = [5, 19, 83]


def random_log(seed: int) -> BooleanTable:
    rng = random.Random(seed)
    width = rng.choice([8, 12, 20])
    schema = Schema.anonymous(width)
    if rng.random() < 0.5:
        return synthetic_workload(schema, rng.randrange(30, 200), seed=seed)
    return BooleanTable(
        schema,
        [rng.randrange(2**width) & rng.randrange(2**width)
         for _ in range(rng.randrange(5, 150))],
    )


class TestShardBounds:
    def test_bounds_cover_contiguously_and_balanced(self):
        for num_rows in (0, 1, 2, 7, 100, 101):
            for shards in (1, 2, 3, 8, 150):
                bounds = shard_bounds(num_rows, shards)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == num_rows
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1
                # shards never outnumber rows (empty log gets one shard)
                assert len(bounds) == max(1, min(shards, num_rows))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            shard_bounds(10, 0)
        with pytest.raises(ValidationError):
            shard_bounds(-1, 2)


class TestShardedCounting:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_satisfied_count_matches_full_index(self, seed, shards):
        log = random_log(seed)
        sharded = ShardedLog(log, shards)
        index = log.vertical_index()
        rng = random.Random(seed + 1)
        for _ in range(20):
            mask = rng.randrange(2**log.schema.width)
            assert sharded.satisfied_count(mask) == index.satisfied_count(mask)
            assert sharded.satisfied_rows(mask) == index.satisfied_rows(mask)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_evaluate_many_matches_problem(self, seed):
        log = random_log(seed)
        rng = random.Random(seed + 2)
        width = log.schema.width
        new_tuple = random_mask(width, max(2, width // 2), rng)
        problem = VisibilityProblem(log, new_tuple, 2)
        candidates = [
            random_mask(width, 2, rng) & new_tuple for _ in range(15)
        ]
        sharded = ShardedLog(log, 3)
        assert sharded.evaluate_many(candidates) == problem.evaluate_many(candidates)

    def test_evaluate_many_over_worker_pool(self):
        log = random_log(SEEDS[0])
        sharded = ShardedLog(log, 4)
        rng = random.Random(7)
        masks = [rng.randrange(2**log.schema.width) for _ in range(10)]
        inline = sharded.evaluate_many(masks)
        with WorkerPool(2, context=sharded) as pool:
            fanned = sharded.evaluate_many(masks, pool=pool)
        assert fanned == inline

    def test_mask_validation(self):
        log = random_log(SEEDS[0])
        sharded = ShardedLog(log, 2)
        with pytest.raises(ValidationError):
            sharded.satisfied_count(1 << log.schema.width)

    def test_more_shards_than_rows(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b0011, 0b0101, 0b1000])
        sharded = ShardedLog(log, 16)
        assert len(sharded.shards) == 3
        assert sharded.satisfied_count(0b0111) == 2

    def test_empty_log(self):
        log = BooleanTable(Schema.anonymous(4), [])
        sharded = ShardedLog(log, 3)
        assert len(sharded.shards) == 1
        assert sharded.satisfied_count(0b1111) == 0
        assert sharded.satisfiable_rows(0b1111) == (0, [])


class TestSatisfiableExtraction:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", [1, 2, 5])
    def test_matches_lazy_problem_views_exactly(self, seed, shards):
        """Same rows, same ascending order — the priming contract."""
        log = random_log(seed)
        rng = random.Random(seed + 3)
        width = log.schema.width
        new_tuple = random_mask(width, max(2, (2 * width) // 3), rng)
        problem = VisibilityProblem(log, new_tuple, 2)
        tids, queries = ShardedLog(log, shards).satisfiable_rows(new_tuple)
        assert tids == problem.satisfiable_tids
        assert queries == problem.satisfiable_queries

    def test_primed_problem_solves_identically(self):
        log = random_log(SEEDS[1])
        rng = random.Random(99)
        width = log.schema.width
        new_tuple = random_mask(width, max(3, width // 2), rng)
        from repro.core.itemsets import MaxFreqItemsetsSolver

        plain = MaxFreqItemsetsSolver().solve(VisibilityProblem(log, new_tuple, 2))
        primed_problem = VisibilityProblem(
            BooleanTable(log.schema, list(log)), new_tuple, 2
        )
        tids, queries = ShardedLog(primed_problem.log, 3).satisfiable_rows(new_tuple)
        primed_problem.prime_satisfiable(tids, queries)
        primed = MaxFreqItemsetsSolver().solve(primed_problem)
        assert primed.keep_mask == plain.keep_mask
        assert primed.satisfied == plain.satisfied
        assert primed.stats == plain.stats

    def test_prime_rejects_inconsistent_views(self):
        log = random_log(SEEDS[2])
        problem = VisibilityProblem(log, 0, 0)
        with pytest.raises(ValidationError):
            problem.prime_satisfiable(0b11, [1])
