"""Shared plumbing for the serving-layer tests: a tiny sync HTTP client."""

from __future__ import annotations

import http.client
import json


def request(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    host: str = "127.0.0.1",
    timeout_s: float = 30.0,
):
    """One request against a running server; returns ``(status, body, headers)``.

    ``body`` is a dict for JSON responses, text otherwise.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        headers = {k.lower(): v for k, v in response.getheaders()}
        if headers.get("content-type", "").startswith("application/json"):
            decoded = json.loads(raw.decode() or "null")
        else:
            decoded = raw.decode()
        return response.status, decoded, headers
    finally:
        conn.close()
