"""End-to-end serving tests over real sockets (ephemeral ports).

Every test starts a :class:`~repro.serve.ServerThread` on port 0 and
talks plain HTTP through ``conftest.request``.  The tier-1 smoke test
drives two tenants and checks the served answers are bit-identical to a
serial :class:`~repro.simulate.monitor.VisibilityMonitor` replay of the
same query streams.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ReproError
from repro.obs.recorder import Recorder, recording
from repro.runtime import SolverHarness
from repro.serve import ServeConfig, ServerThread
from repro.simulate.monitor import VisibilityMonitor
from tests.serve.conftest import request

WIDTH = 6
CHAIN = ("ILP", "ConsumeAttrCumul")

TENANT_STREAMS = {
    "alpha": [0b110000, 0b100100, 0b010100, 0b000101, 0b001010],
    "beta": [0b111000, 0b000111, 0b101010, 0b010101, 0b110011, 0b001100],
}
NEW_TUPLE = 0b110111
BUDGET = 3


def wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


def serial_reference(queries: list[int]):
    """What a serial monitor replay of the same stream answers."""
    monitor = VisibilityMonitor(
        NEW_TUPLE,
        0,
        BUDGET,
        Schema.anonymous(WIDTH),
        window_size=512,
        harness=SolverHarness(CHAIN, deadline_ms=None),
    )
    monitor.observe_many(queries)
    return monitor.reoptimize_anytime()


def test_smoke_two_tenants_bit_identical_and_clean_shutdown():
    """Tier-1 smoke: serve two tenants, match the serial monitor exactly."""
    thread = ServerThread(
        ServeConfig(width=WIDTH, chain=CHAIN, deadline_ms=None)
    )
    with thread as server:
        port = server.port
        for name, queries in TENANT_STREAMS.items():
            status, body, _ = request(
                port, "POST", "/ingest", {"tenant": name, "queries": queries}
            )
            assert status == 200
            assert body["accepted"] == len(queries)
            assert body["window"] == len(queries)

        answers = {}
        for name in TENANT_STREAMS:
            status, body, _ = request(
                port, "POST", "/solve",
                {"tenant": name, "new_tuple": NEW_TUPLE, "budget": BUDGET},
            )
            assert status == 200
            assert body["status"] == "exact"
            answers[name] = body

        status, body, _ = request(port, "GET", "/status")
        assert status == 200
        assert sorted(body["tenants"]) == sorted(TENANT_STREAMS)

    # bit-identical to the serial monitor replay, tenant by tenant
    for name, queries in TENANT_STREAMS.items():
        outcome = serial_reference(queries)
        served = answers[name]
        assert served["keep_mask"] == outcome.solution.keep_mask
        assert served["satisfied"] == outcome.solution.satisfied
        assert served["algorithm"] == outcome.solution.algorithm
        assert served["optimal"] is outcome.solution.optimal
        assert served["status"] == outcome.status

    # clean shutdown: the context manager drained and the port is dead
    assert not thread.server.running
    with pytest.raises(OSError):
        request(port, "GET", "/status", timeout_s=2.0)


def test_protocol_errors_over_the_wire():
    with ServerThread(ServeConfig(width=WIDTH, chain=CHAIN)) as server:
        port = server.port
        status, body, _ = request(port, "POST", "/solve", {"tenant": "t"})
        assert status == 400 and "new_tuple" in body["error"]

        status, body, _ = request(port, "GET", "/nowhere")
        assert status == 404

        status, body, _ = request(port, "POST", "/status", {})
        assert status == 405

        # solving against an empty window is a conflict, not a crash
        status, body, _ = request(
            port, "POST", "/solve",
            {"tenant": "empty", "new_tuple": 1, "budget": 1},
        )
        assert status == 409 and "no ingested queries" in body["error"]

        # a protocol-level oversized batch is 413
        status, body, _ = request(
            port, "POST", "/ingest",
            {"tenant": "t", "queries": [1] * 10_001},
        )
        assert status == 413


def test_tenant_isolation():
    """One tenant's bad requests and window never leak into another's."""
    with ServerThread(ServeConfig(width=WIDTH, chain=CHAIN)) as server:
        port = server.port
        request(port, "POST", "/ingest", {"tenant": "a", "queries": [1, 2, 3]})
        request(port, "POST", "/ingest", {"tenant": "b", "queries": [4]})

        # a's unknown-solver chain fails for a only
        status, body, _ = request(
            port, "POST", "/solve",
            {"tenant": "a", "new_tuple": 7, "budget": 2,
             "chain": ["NoSuchSolver"]},
        )
        assert status == 400

        status, body, _ = request(
            port, "POST", "/solve", {"tenant": "b", "new_tuple": 7, "budget": 2}
        )
        assert status == 200

        status, body, _ = request(port, "GET", "/status")
        assert body["tenants"]["a"]["window"] == 3
        assert body["tenants"]["b"]["window"] == 1
        assert body["tenants"]["a"]["solves"] == 0
        assert body["tenants"]["b"]["solves"] == 1


def _gate_tenant_solve(server, tenant_name: str):
    """Replace a tenant's solve with one that blocks on an event."""
    tenant = server.tenants.get(tenant_name)
    gate = threading.Event()
    started = threading.Event()

    def slow_solve(request_obj):
        started.set()
        assert gate.wait(timeout=30.0)
        return {"tenant": tenant_name, "gated": True}

    tenant.solve = slow_solve
    return gate, started


def test_tenant_queue_shed_is_429_with_retry_after():
    config = ServeConfig(width=WIDTH, chain=CHAIN, queue_depth=1, workers=2)
    with ServerThread(config) as server:
        port = server.port
        request(port, "POST", "/ingest", {"tenant": "t", "queries": [1]})
        gate, started = _gate_tenant_solve(server, "t")

        payload = {"tenant": "t", "new_tuple": 1, "budget": 1}
        background = []
        worker = threading.Thread(
            target=lambda: background.append(
                request(port, "POST", "/solve", payload)
            )
        )
        worker.start()
        started.wait(timeout=10.0)
        wait_until(lambda: server.admission.pending_for("t") == 1)

        # the tenant's single slot is taken: the second solve is shed
        status, body, headers = request(port, "POST", "/solve", payload)
        assert status == 429
        assert body["error"] == "shed: tenant_queue"
        assert "retry-after" in headers

        gate.set()
        worker.join(timeout=10.0)
        status, body, _ = background[0]
        assert status == 200 and body["gated"] is True
        assert server.admission.total_pending == 0


def test_global_overload_shed_is_503():
    config = ServeConfig(
        width=WIDTH, chain=CHAIN, queue_depth=1, max_pending=1, workers=2
    )
    with ServerThread(config) as server:
        port = server.port
        for name in ("a", "b"):
            request(port, "POST", "/ingest", {"tenant": name, "queries": [1]})
        gate, started = _gate_tenant_solve(server, "a")

        worker = threading.Thread(
            target=lambda: request(
                port, "POST", "/solve",
                {"tenant": "a", "new_tuple": 1, "budget": 1},
            )
        )
        worker.start()
        started.wait(timeout=10.0)

        # the whole box is saturated: a *different* tenant is shed 503
        status, body, headers = request(
            port, "POST", "/solve", {"tenant": "b", "new_tuple": 1, "budget": 1}
        )
        assert status == 503
        assert body["error"] == "shed: overload"
        assert "retry-after" in headers

        gate.set()
        worker.join(timeout=10.0)


def test_tenant_limit_shed_is_429():
    with ServerThread(
        ServeConfig(width=WIDTH, chain=CHAIN, max_tenants=1)
    ) as server:
        port = server.port
        status, _, _ = request(
            port, "POST", "/ingest", {"tenant": "only", "queries": [1]}
        )
        assert status == 200
        status, body, _ = request(
            port, "POST", "/ingest", {"tenant": "extra", "queries": [1]}
        )
        assert status == 429
        assert "tenant limit" in body["error"]
        # the existing tenant keeps being served
        status, _, _ = request(
            port, "POST", "/ingest", {"tenant": "only", "queries": [2]}
        )
        assert status == 200


def test_graceful_shutdown_drains_inflight_requests():
    thread = ServerThread(ServeConfig(width=WIDTH, chain=CHAIN, workers=2))
    server = thread.start()
    try:
        port = server.port
        request(port, "POST", "/ingest", {"tenant": "t", "queries": [1]})
        gate, started = _gate_tenant_solve(server, "t")

        background = []
        worker = threading.Thread(
            target=lambda: background.append(
                request(port, "POST", "/solve",
                        {"tenant": "t", "new_tuple": 1, "budget": 1})
            )
        )
        worker.start()
        started.wait(timeout=10.0)

        stopper = threading.Thread(target=thread.stop)
        stopper.start()
        wait_until(lambda: server._stopping)
        assert stopper.is_alive()  # stop() is waiting on the drain

        gate.set()
        worker.join(timeout=10.0)
        stopper.join(timeout=10.0)
        assert not stopper.is_alive()

        # the in-flight request was answered, not dropped
        status, body, _ = background[0]
        assert status == 200 and body["gated"] is True
        assert not server.running
    finally:
        gate.set()
        thread.stop()


def test_durable_tenants_resume_across_restarts(tmp_path):
    store = tmp_path / "serve-store"
    config = ServeConfig(
        width=WIDTH, chain=("ConsumeAttrCumul",), deadline_ms=None,
        store_dir=store,
    )
    payload = {"tenant": "persisted", "new_tuple": NEW_TUPLE, "budget": BUDGET}
    queries = TENANT_STREAMS["alpha"]

    with ServerThread(config) as server:
        port = server.port
        request(port, "POST", "/ingest",
                {"tenant": "persisted", "queries": queries})
        status, first, _ = request(port, "POST", "/solve", payload)
        assert status == 200

    # a fresh server over the same store resumes the window on first touch
    with ServerThread(config) as server:
        port = server.port
        status, resumed, _ = request(port, "POST", "/solve", payload)
        assert status == 200
        assert resumed["keep_mask"] == first["keep_mask"]
        assert resumed["satisfied"] == first["satisfied"]
        assert resumed["window"] == len(queries)

        status, body, _ = request(port, "GET", "/status")
        assert body["tenants"]["persisted"]["durable"] is True


def test_metrics_and_healthz_with_live_recorder():
    with recording(Recorder()) as recorder:
        with ServerThread(ServeConfig(width=WIDTH, chain=CHAIN)) as server:
            port = server.port
            request(port, "POST", "/ingest", {"tenant": "t", "queries": [1, 3]})
            request(port, "POST", "/solve",
                    {"tenant": "t", "new_tuple": 7, "budget": 2})

            status, text, _ = request(port, "GET", "/metrics")
            assert status == 200
            assert "repro_serve_api_requests_total" in text
            assert "repro_serve_solve_seconds" in text
            assert "repro_serve_tenants 1" in text

            status, body, _ = request(port, "GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["checks"]["admission"]["healthy"] is True
            assert body["checks"]["tenants"]["healthy"] is True

    assert recorder.metrics.counter_total("repro_serve_solves_total") == 1
    assert recorder.metrics.counter_total("repro_serve_tenants_created_total") == 1


def test_metrics_without_recorder_is_explicit():
    with ServerThread(ServeConfig(width=WIDTH, chain=CHAIN)) as server:
        status, text, _ = request(server.port, "GET", "/metrics")
        assert status == 200
        assert text.startswith("# no live recorder installed")


def test_bind_failure_propagates():
    with ServerThread(ServeConfig(width=WIDTH, chain=CHAIN)) as server:
        taken = server.port
        clash = ServerThread(ServeConfig(width=WIDTH, chain=CHAIN, port=taken))
        with pytest.raises((OSError, ReproError)):
            clash.start()
