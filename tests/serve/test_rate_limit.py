"""Per-tenant token-bucket rate limiting in the admission controller.

Unit tests drive the bucket with an injected fake clock (no sleeps, no
flakiness); the integration test hammers a real server with a tiny
budget and checks the 429 + ``Retry-After`` contract over the wire.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.serve import ServeConfig, ServerThread
from repro.serve.admission import SHED_STATUS, AdmissionController
from tests.serve.conftest import request


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _controller(rate: float, burst: int | None = None, clock=None):
    return AdmissionController(
        4, 16, rate_limit=rate, burst=burst, clock=clock or FakeClock()
    )


def test_burst_admits_then_sheds_rate_limit():
    clock = FakeClock()
    admission = _controller(1.0, burst=3, clock=clock)
    for _ in range(3):
        assert admission.try_acquire("alpha") is None
        admission.release("alpha")
    assert admission.try_acquire("alpha") == "rate_limit"
    assert admission.shed["rate_limit"] == 1


def test_bucket_refills_with_time():
    clock = FakeClock()
    admission = _controller(2.0, burst=1, clock=clock)
    assert admission.try_acquire("alpha") is None
    admission.release("alpha")
    assert admission.try_acquire("alpha") == "rate_limit"
    clock.advance(0.5)  # 2 tokens/s * 0.5 s = one fresh token
    assert admission.try_acquire("alpha") is None
    admission.release("alpha")
    assert admission.try_acquire("alpha") == "rate_limit"


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    admission = _controller(10.0, burst=2, clock=clock)
    clock.advance(3600.0)  # an hour idle must not bank 36000 tokens
    admitted = 0
    while admission.try_acquire("alpha") is None:
        admission.release("alpha")
        admitted += 1
    assert admitted == 2


def test_buckets_are_per_tenant():
    clock = FakeClock()
    admission = _controller(1.0, burst=1, clock=clock)
    assert admission.try_acquire("alpha") is None
    admission.release("alpha")
    assert admission.try_acquire("alpha") == "rate_limit"
    # a neighbour still has its full bucket
    assert admission.try_acquire("beta") is None
    admission.release("beta")


def test_rate_limit_shed_is_429():
    assert SHED_STATUS["rate_limit"] == 429


def test_default_burst_is_the_ceiled_rate():
    admission = AdmissionController(4, 16, rate_limit=2.5)
    assert admission.burst == 3
    unlimited = AdmissionController(4, 16)
    assert unlimited.rate_limit is None and unlimited.burst is None


def test_snapshot_carries_the_rate_limit_counters():
    clock = FakeClock()
    admission = _controller(1.0, burst=1, clock=clock)
    assert admission.try_acquire("alpha") is None
    snapshot = admission.snapshot()
    assert snapshot["rate_limit"] == 1.0
    assert snapshot["burst"] == 1
    assert snapshot["shed"]["rate_limit"] == 0


def test_validation_rejects_bad_rate_parameters():
    with pytest.raises(ValidationError):
        AdmissionController(4, 16, rate_limit=0.0)
    with pytest.raises(ValidationError):
        AdmissionController(4, 16, rate_limit=-1.0)
    with pytest.raises(ValidationError):
        AdmissionController(4, 16, burst=2)  # burst without a rate
    with pytest.raises(ValidationError):
        AdmissionController(4, 16, rate_limit=1.0, burst=0)


def test_unlimited_controller_never_sheds_on_rate():
    admission = AdmissionController(4, 16)
    for _ in range(64):
        assert admission.try_acquire("alpha") is None
        admission.release("alpha")
    assert admission.shed["rate_limit"] == 0


def test_rate_limited_server_sheds_429_with_retry_after_over_the_wire():
    """A drained bucket answers 429 + Retry-After without queueing."""
    config = ServeConfig(
        width=4, chain=("ConsumeAttrCumul",), deadline_ms=None,
        rate_limit=0.001, rate_burst=2,
    )
    with ServerThread(config) as server:
        port = server.port
        statuses = []
        for _ in range(4):
            status, body, headers = request(
                port, "POST", "/ingest",
                {"tenant": "alpha", "queries": [0b0011]},
            )
            statuses.append(status)
        assert statuses[:2] == [200, 200]
        assert statuses[2:] == [429, 429]
        assert headers["retry-after"]
        assert body["error"] == "shed: rate_limit"

        # the shed shows up in the admission snapshot on /status
        status, payload, _ = request(port, "GET", "/status")
        assert status == 200
        assert payload["admission"]["shed"]["rate_limit"] == 2
        assert payload["admission"]["rate_limit"] == 0.001
