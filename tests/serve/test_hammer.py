"""Thread-safety hammer tests: scrape-while-mutate and atomic transitions.

These are the regression tests for the concurrency sweep behind the
serving layer: obs primitives are scraped from one thread while worker
threads mutate them, the solve cache is hit from a pool and must answer
bit-identically to uncached serial solves, and the circuit breaker's
half-open state must admit exactly one probe per cooldown window no
matter how many threads race for it.
"""

from __future__ import annotations

import random
import threading

from repro.booldata.schema import Schema
from repro.core.problem import VisibilityProblem
from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder
from repro.obs.tracing import Tracer
from repro.runtime import CircuitBreaker, SolverHarness
from repro.stream import SolveCache, StreamingLog

THREADS = 8


def run_threads(target, count: int = THREADS, args_for=None):
    barrier = threading.Barrier(count)

    def wrapped(index: int) -> None:
        barrier.wait()
        target(*(args_for(index) if args_for else (index,)))

    pool = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


# -- metrics: scrape while mutating -------------------------------------------


def test_metrics_scrape_while_mutate():
    """Writers hammer counters/gauges/histograms while scrapers export.

    The histogram observes a constant value, so any torn snapshot shows
    up as ``sum != value * count``; the final totals must be exact.
    """
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_ops_total", "Ops.", ("kind",))
    gauge = registry.gauge("repro_test_level", "Level.", ())
    histogram = registry.histogram("repro_test_seconds", "Latency.", ("kind",))
    value = 0.125
    per_thread = 400
    stop = threading.Event()
    torn = []

    def scraper() -> None:
        while not stop.is_set():
            text = registry.to_prometheus()
            assert "repro_test_ops_total" in text
            for sample in histogram.sample_dicts():
                if abs(sample["sum"] - value * sample["count"]) > 1e-9:
                    torn.append(sample)
            registry.snapshot()

    scrapers = [threading.Thread(target=scraper) for _ in range(2)]
    for thread in scrapers:
        thread.start()

    def writer(index: int) -> None:
        kind = f"k{index % 2}"
        for _ in range(per_thread):
            counter.inc(1, {"kind": kind})
            gauge.set(index)
            histogram.observe(value, {"kind": kind})

    try:
        run_threads(writer)
    finally:
        stop.set()
        for thread in scrapers:
            thread.join()

    assert torn == []
    assert counter.total() == THREADS * per_thread
    for sample in histogram.sample_dicts():
        assert sample["sum"] == value * sample["count"]
    counts = {
        s["labels"]["kind"]: s["count"] for s in histogram.sample_dicts()
    }
    assert counts == {"k0": 4 * per_thread, "k1": 4 * per_thread}


def test_counter_increments_are_never_lost():
    """The classic lost-update race: N threads x M increments == N*M."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_total", "T.", ())
    per_thread = 2000

    def writer(_index: int) -> None:
        for _ in range(per_thread):
            counter.inc()

    run_threads(writer)
    assert counter.total() == THREADS * per_thread


def test_event_journal_concurrent_record_and_tail():
    journal = EventJournal(capacity=256)
    per_thread = 300
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            tail = journal.tail(50)
            # sequence numbers are unique and ordered within a tail
            seqs = [event.seq for event in tail]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            journal.counts_by_kind()

    scraper = threading.Thread(target=reader)
    scraper.start()

    def writer(index: int) -> None:
        for i in range(per_thread):
            journal.record(f"kind{index % 3}", step=i)

    try:
        run_threads(writer)
    finally:
        stop.set()
        scraper.join()

    assert journal.total == THREADS * per_thread
    assert sum(journal.counts_by_kind().values()) == len(journal)


def test_tracer_concurrent_spans_and_export():
    tracer = Tracer(max_spans=10_000)
    per_thread = 200
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            for span in tracer.finished_spans():
                assert span.status in {"ok", "error"}
            tracer.to_dicts()

    scraper = threading.Thread(target=reader)
    scraper.start()

    def writer(index: int) -> None:
        for i in range(per_thread):
            with tracer.span(f"work{index}", step=i):
                pass

    try:
        run_threads(writer)
    finally:
        stop.set()
        scraper.join()

    finished = tracer.finished_spans()
    assert len(finished) == THREADS * per_thread
    assert len({span.span_id for span in finished}) == len(finished)


def test_recorder_export_while_observing_windowed_histogram():
    """End-to-end scrape path: export_prometheus against live observes."""
    recorder = Recorder()
    stop = threading.Event()

    def scraper() -> None:
        while not stop.is_set():
            text = recorder.export_prometheus()
            assert "repro_serve_solve_seconds" in text
            recorder.export_json()

    thread = threading.Thread(target=scraper)
    thread.start()

    def writer(index: int) -> None:
        for _ in range(300):
            recorder.observe("repro_serve_solve_seconds", 0.01)
            recorder.count("repro_serve_solves_total", 1, {"status": "exact"})
            recorder.event("serve.test", index=index)

    try:
        run_threads(writer)
    finally:
        stop.set()
        thread.join()

    assert recorder.metrics.counter_total("repro_serve_solves_total") == (
        THREADS * 300
    )


# -- solve cache: concurrent hits are bit-identical ---------------------------


def test_solve_cache_concurrent_hits_match_serial_solves():
    """Property: under concurrency, cached answers equal uncached ones.

    Rounds alternate a single-threaded window mutation (StreamingLog is
    single-writer by design) with a multi-threaded solve burst; every
    answer must be bit-identical to a fresh uncached harness run, and
    the LRU bound must hold throughout.
    """
    rng = random.Random(42)
    width = 6
    schema = Schema.anonymous(width)
    log = StreamingLog(schema, window_size=64)
    cache = SolveCache(log, capacity=16)
    # one harness per thread: the cache key only depends on the chain
    harnesses = [
        SolverHarness(("ConsumeAttrCumul",), deadline_ms=None)
        for _ in range(THREADS)
    ]
    reference_harness = SolverHarness(("ConsumeAttrCumul",), deadline_ms=None)

    for round_index in range(6):
        log.extend([rng.getrandbits(width) or 1 for _ in range(10)])
        requests = [
            (rng.getrandbits(width), rng.randint(0, width)) for _ in range(8)
        ]
        # serial uncached reference answers for this window state
        reference_log = StreamingLog(schema, window_size=64)
        reference_log.extend(log.rows)
        expected = {}
        for new_tuple, budget in requests:
            outcome = reference_harness.run(
                VisibilityProblem.from_stream(reference_log, new_tuple, budget)
            )
            expected[(new_tuple, budget)] = (
                outcome.solution.keep_mask,
                outcome.solution.satisfied,
            )

        answers: dict[tuple, list] = {pair: [] for pair in requests}
        lock = threading.Lock()

        def worker(index: int) -> None:
            for pair in requests:
                outcome = cache.run(pair[0], pair[1], harnesses[index])
                with lock:
                    answers[pair].append(
                        (outcome.solution.keep_mask, outcome.solution.satisfied)
                    )

        run_threads(worker)
        assert len(cache) <= cache.capacity
        for pair, seen in answers.items():
            assert seen == [expected[pair]] * THREADS, (round_index, pair)

    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == 6 * THREADS * 8
    assert stats["entries"] <= cache.capacity


# -- circuit breaker: single-probe half-open ----------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tripped_breaker(clock: FakeClock) -> CircuitBreaker:
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "open"
    return breaker


def race_allow(breaker: CircuitBreaker, threads: int = 16) -> int:
    grants = []
    lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker() -> None:
        barrier.wait()
        granted = breaker.allow()
        with lock:
            grants.append(granted)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return sum(grants)


def test_breaker_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = tripped_breaker(clock)
    assert race_allow(breaker) == 0  # cooldown still running

    clock.advance(10.0)
    assert breaker.state == "half-open"
    assert race_allow(breaker) == 1  # one probe, no matter the contention

    # the probe failed: back to a full cooldown, nobody gets through
    breaker.record_failure()
    assert breaker.state == "open"
    assert race_allow(breaker) == 0

    clock.advance(10.0)
    assert race_allow(breaker) == 1
    breaker.record_success()
    assert breaker.state == "closed"
    assert race_allow(breaker) == 16  # closed admits everyone


def test_breaker_lost_probe_self_expires():
    """A claimed probe whose thread dies cannot wedge the breaker."""
    clock = FakeClock()
    breaker = tripped_breaker(clock)
    clock.advance(10.0)
    assert breaker.allow() is True  # probe claimed, never resolved
    assert breaker.allow() is False  # slot held
    clock.advance(10.0)
    assert breaker.allow() is True  # claim expired; a new probe may run


def test_breaker_chaos_never_corrupts_state():
    """Random concurrent failure/success/allow traffic stays coherent."""
    breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.001)

    def worker(index: int) -> None:
        rng = random.Random(index)
        for _ in range(500):
            roll = rng.random()
            if roll < 0.4:
                breaker.record_failure()
            elif roll < 0.6:
                breaker.record_success()
            else:
                breaker.allow()
            assert breaker.state in {"closed", "open", "half-open"}
            assert breaker.failures >= 0

    run_threads(worker)
    # terminal sanity: a success from quiescence closes it for good
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow() is True
