"""Admission-control bounds: per-tenant 429, global 503, exact bookkeeping."""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import ValidationError
from repro.serve.admission import SHED_STATUS, AdmissionController


def test_constructor_validation():
    with pytest.raises(ValidationError):
        AdmissionController(0, 4)
    with pytest.raises(ValidationError):
        AdmissionController(4, 2)


def test_tenant_bound_sheds_429():
    admission = AdmissionController(queue_depth=2, max_total=10)
    assert admission.try_acquire("a") is None
    assert admission.try_acquire("a") is None
    reason = admission.try_acquire("a")
    assert reason == "tenant_queue"
    assert SHED_STATUS[reason] == 429
    # a neighbour is unaffected by a's saturation
    assert admission.try_acquire("b") is None


def test_global_bound_sheds_503():
    admission = AdmissionController(queue_depth=2, max_total=3)
    for tenant in ("a", "a", "b"):
        assert admission.try_acquire(tenant) is None
    reason = admission.try_acquire("c")
    assert reason == "overload"
    assert SHED_STATUS[reason] == 503
    assert admission.snapshot()["shed"]["overload"] == 1


def test_release_restores_capacity():
    admission = AdmissionController(queue_depth=1, max_total=1)
    assert admission.try_acquire("a") is None
    assert admission.try_acquire("a") == "overload"  # global bound first
    admission.release("a")
    assert admission.try_acquire("a") is None
    admission.release("a")
    assert admission.total_pending == 0
    assert admission.pending_for("a") == 0


def test_release_never_goes_negative():
    admission = AdmissionController(queue_depth=2, max_total=4)
    admission.release("ghost")
    admission.release("ghost")
    assert admission.total_pending == 0
    assert admission.try_acquire("ghost") is None
    assert admission.total_pending == 1


def test_snapshot_shape():
    admission = AdmissionController(queue_depth=2, max_total=4)
    admission.try_acquire("a")
    snapshot = admission.snapshot()
    assert snapshot == {
        "pending": 1,
        "queue_depth": 2,
        "max_total": 4,
        "rate_limit": None,
        "burst": None,
        "shed": {"tenant_queue": 0, "overload": 0, "rate_limit": 0},
    }


def test_concurrent_acquire_admits_exactly_max_total():
    """T threads fight for the global bound; admissions never exceed it."""
    admission = AdmissionController(queue_depth=8, max_total=8)
    threads = 16
    barrier = threading.Barrier(threads)
    admitted = []
    lock = threading.Lock()

    def worker(tenant: str) -> None:
        barrier.wait()
        reason = admission.try_acquire(tenant)
        with lock:
            admitted.append(reason)

    pool = [
        threading.Thread(target=worker, args=(f"t{i % 4}",))
        for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    assert admitted.count(None) == 8
    assert admission.total_pending == 8
    shed = admission.snapshot()["shed"]
    assert shed["tenant_queue"] + shed["overload"] == 8


def test_concurrent_acquire_release_converges_to_zero():
    admission = AdmissionController(queue_depth=4, max_total=32)
    rounds = 200

    def worker(tenant: str) -> None:
        for _ in range(rounds):
            if admission.try_acquire(tenant) is None:
                admission.release(tenant)

    pool = [
        threading.Thread(target=worker, args=(f"t{i % 3}",)) for i in range(8)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    assert admission.total_pending == 0
    assert all(admission.pending_for(f"t{i}") == 0 for i in range(3))
