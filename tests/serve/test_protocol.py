"""Strict-parsing contract of the wire protocol."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    MAX_INGEST_BATCH,
    ProtocolError,
    parse_ingest,
    parse_solve,
)

WIDTH = 6


def body(**fields) -> bytes:
    return json.dumps(fields).encode()


class TestParseSolve:
    def test_minimal_valid(self):
        request = parse_solve(body(tenant="t1", new_tuple=0b101, budget=2), WIDTH)
        assert request.tenant == "t1"
        assert request.new_tuple == 0b101
        assert request.budget == 2
        assert request.deadline_ms is None
        assert request.chain is None

    def test_full_valid(self):
        request = parse_solve(
            body(tenant="a.b-c_9", new_tuple=63, budget=0, deadline_ms=50,
                 chain=["ILP", "ConsumeAttrCumul"]),
            WIDTH,
        )
        assert request.deadline_ms == 50.0
        assert request.chain == ("ILP", "ConsumeAttrCumul")

    @pytest.mark.parametrize("raw", [b"", b"nonsense", b"[1, 2]", b'"str"'])
    def test_non_object_bodies(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse_solve(raw, WIDTH)
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("tenant", ["", "-leading", "a" * 65, "sp ace", 7, None])
    def test_bad_tenant_names(self, tenant):
        with pytest.raises(ProtocolError):
            parse_solve(body(tenant=tenant, new_tuple=1, budget=1), WIDTH)

    def test_missing_required_fields(self):
        with pytest.raises(ProtocolError, match="new_tuple and budget"):
            parse_solve(body(tenant="t", new_tuple=1), WIDTH)
        with pytest.raises(ProtocolError, match="new_tuple and budget"):
            parse_solve(body(tenant="t", budget=1), WIDTH)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields: extra"):
            parse_solve(body(tenant="t", new_tuple=1, budget=1, extra=1), WIDTH)

    @pytest.mark.parametrize("mask", [-1, 1 << WIDTH, True, 1.5, "3"])
    def test_mask_validation(self, mask):
        with pytest.raises(ProtocolError):
            parse_solve(body(tenant="t", new_tuple=mask, budget=1), WIDTH)

    @pytest.mark.parametrize("budget", [-1, True, 1.5, "3", None])
    def test_budget_validation(self, budget):
        with pytest.raises(ProtocolError):
            parse_solve(body(tenant="t", new_tuple=1, budget=budget), WIDTH)

    @pytest.mark.parametrize("deadline", [0, -5, "fast", True])
    def test_deadline_validation(self, deadline):
        with pytest.raises(ProtocolError):
            parse_solve(
                body(tenant="t", new_tuple=1, budget=1, deadline_ms=deadline),
                WIDTH,
            )

    @pytest.mark.parametrize("chain", [[], ["ok", ""], "ILP", [1], ["a", None]])
    def test_chain_validation(self, chain):
        with pytest.raises(ProtocolError):
            parse_solve(
                body(tenant="t", new_tuple=1, budget=1, chain=chain), WIDTH
            )


class TestParseIngest:
    def test_valid_batch(self):
        request = parse_ingest(body(tenant="t", queries=[1, 2, 63]), WIDTH)
        assert request.queries == (1, 2, 63)

    @pytest.mark.parametrize("queries", [None, [], "masks", 5])
    def test_batch_shape(self, queries):
        with pytest.raises(ProtocolError):
            parse_ingest(body(tenant="t", queries=queries), WIDTH)

    def test_member_masks_validated(self):
        with pytest.raises(ProtocolError, match=r"queries\[1\]"):
            parse_ingest(body(tenant="t", queries=[1, 1 << WIDTH]), WIDTH)

    def test_oversized_batch_is_413(self):
        queries = [1] * (MAX_INGEST_BATCH + 1)
        with pytest.raises(ProtocolError) as excinfo:
            parse_ingest(body(tenant="t", queries=queries), WIDTH)
        assert excinfo.value.status == 413

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            parse_ingest(body(tenant="t", queries=[1], mode="fast"), WIDTH)
