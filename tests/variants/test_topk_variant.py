"""Tests for the SOC-Topk variant and its reduction to SOC-CB-QL."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import bit_count
from repro.common.combinatorics import combinations_of_mask
from repro.common.errors import ValidationError
from repro.core import BruteForceSolver
from repro.retrieval import AttributeCountScore, ExtrinsicScore
from repro.variants import TopkVisibilityProblem, reduce_topk_to_cbql, solve_topk
from repro.variants.topk import greedy_topk


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(5)


@pytest.fixture
def database(schema) -> BooleanTable:
    return BooleanTable(
        schema,
        [0b00111, 0b01111, 0b00011, 0b11000, 0b00101, 0b11111],
    )


@pytest.fixture
def log(schema) -> BooleanTable:
    return BooleanTable(
        schema,
        [0b00001, 0b00010, 0b00100, 0b00011, 0b01000, 0b10000],
    )


def brute_force_topk_optimum(problem: TopkVisibilityProblem) -> int:
    """Oracle: enumerate all compressions, evaluate true top-k visibility."""
    best = 0
    size = min(problem.budget, bit_count(problem.new_tuple))
    for keep in combinations_of_mask(problem.new_tuple, size):
        best = max(best, problem.visibility(keep))
    return best


class TestValidation:
    def test_schema_mismatch_rejected(self, database, schema):
        other = BooleanTable(Schema.anonymous(4), [1])
        with pytest.raises(ValidationError):
            TopkVisibilityProblem(database, other, 0b1, 2, AttributeCountScore(), 1)

    def test_bad_k_rejected(self, database, log):
        with pytest.raises(ValidationError):
            TopkVisibilityProblem(database, log, 0b1, 2, AttributeCountScore(), 0)


class TestReduction:
    def test_reduction_drops_hopeless_queries(self, database, log):
        problem = TopkVisibilityProblem(
            database, log, new_tuple=0b00111, budget=2,
            scoring=AttributeCountScore(), k=1,
        )
        reduced = reduce_topk_to_cbql(problem)
        # with k=1 and candidate score 2, queries matched by a higher-
        # scoring row are hopeless
        assert len(reduced.log) < len(log)

    def test_exactness_against_oracle_attribute_count(self, database, log):
        for budget in (1, 2, 3):
            for k in (1, 2, 3):
                problem = TopkVisibilityProblem(
                    database, log, new_tuple=0b01111, budget=budget,
                    scoring=AttributeCountScore(), k=k,
                )
                solution = solve_topk(BruteForceSolver(), problem)
                achieved = problem.visibility(solution.keep_mask)
                assert achieved == brute_force_topk_optimum(problem), (budget, k)
                # reduced-objective value equals true top-k visibility
                assert solution.satisfied == achieved

    def test_exactness_with_extrinsic_score(self, database, log):
        prices = [10.0, 20.0, 5.0, 40.0, 15.0, 60.0]
        for candidate_price, k in ((30.0, 2), (1.0, 1), (100.0, 3)):
            scoring = ExtrinsicScore(prices, candidate_price)
            problem = TopkVisibilityProblem(
                database, log, new_tuple=0b00111, budget=2, scoring=scoring, k=k,
            )
            solution = solve_topk(BruteForceSolver(), problem)
            assert problem.visibility(solution.keep_mask) == brute_force_topk_optimum(
                problem
            )

    def test_non_global_score_rejected(self, database, log):
        from repro.retrieval import GlobalScore

        class MaskDependent(GlobalScore):
            def score_row(self, row_index: int, row_mask: int) -> float:
                return 0.0

            def score_candidate(self, tuple_mask: int) -> float:
                return float(tuple_mask)  # varies with the retained set

        problem = TopkVisibilityProblem(database, log, 0b00111, 2, MaskDependent(), 1)
        with pytest.raises(ValidationError):
            reduce_topk_to_cbql(problem)

    def test_attribute_count_subclass_takes_probe_path(self, database, log):
        """A subclass overriding score_candidate must not silently use the
        popcount shortcut."""

        class ConstantScore(AttributeCountScore):
            def score_candidate(self, tuple_mask: int) -> float:
                return 2.5

        problem = TopkVisibilityProblem(
            database, log, 0b00111, 2, ConstantScore(), 1
        )
        reduced = reduce_topk_to_cbql(problem)  # constant score: no error
        assert len(reduced.log) <= len(log)

    def test_pessimistic_ties(self, database, log):
        problem = TopkVisibilityProblem(
            database, log, new_tuple=0b00111, budget=3,
            scoring=AttributeCountScore(), k=2, tie_policy="pessimistic",
        )
        solution = solve_topk(BruteForceSolver(), problem)
        assert problem.visibility(solution.keep_mask) == brute_force_topk_optimum(
            problem
        )


class TestGreedyTopk:
    def test_bounded_by_oracle(self, database, log):
        problem = TopkVisibilityProblem(
            database, log, new_tuple=0b01111, budget=2,
            scoring=AttributeCountScore(), k=2,
        )
        keep, visibility = greedy_topk(problem)
        assert visibility <= brute_force_topk_optimum(problem)
        assert keep & ~problem.new_tuple == 0
        assert bit_count(keep) <= problem.budget

    def test_visibility_reported_matches_mask(self, database, log):
        problem = TopkVisibilityProblem(
            database, log, new_tuple=0b01111, budget=2,
            scoring=AttributeCountScore(), k=2,
        )
        keep, visibility = greedy_topk(problem)
        assert visibility == problem.visibility(keep)


class TestGreedyTopkWithPriceScoring:
    def test_price_ranking_lower_is_better(self, database, log):
        """greedy_topk works with any scoring, including cheap-first
        price ranking where the new tuple's price is extrinsic."""
        prices = [100.0, 80.0, 120.0, 50.0, 90.0, 30.0]
        scoring = ExtrinsicScore(prices, candidate_value=60.0, higher_is_better=False)
        problem = TopkVisibilityProblem(
            database, log, new_tuple=0b01111, budget=3, scoring=scoring, k=2,
        )
        keep, visibility = greedy_topk(problem)
        assert visibility == problem.visibility(keep)
        assert visibility <= brute_force_topk_optimum(problem)

    def test_cheaper_candidate_sees_more_queries(self, database, log):
        """A cheaper listing survives more top-k cuts under cheap-first
        ranking (monotonicity of the admission predicate)."""
        prices = [100.0, 80.0, 120.0, 50.0, 90.0, 30.0]

        def optimum_for(candidate_price):
            scoring = ExtrinsicScore(prices, candidate_price, higher_is_better=False)
            problem = TopkVisibilityProblem(
                database, log, new_tuple=0b11111, budget=4, scoring=scoring, k=1,
            )
            return brute_force_topk_optimum(problem)

        assert optimum_for(10.0) >= optimum_for(200.0)
