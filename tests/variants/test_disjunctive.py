"""Tests for the disjunctive-retrieval extension variant."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import VisibilityProblem
from repro.variants.disjunctive import (
    disjunctive_satisfied_count,
    solve_disjunctive_brute_force,
    solve_disjunctive_greedy,
    solve_disjunctive_ilp,
)


class TestSemantics:
    def test_any_shared_attribute_counts(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b0011, 0b1100, 0b1000])
        assert disjunctive_satisfied_count(log, 0b0001) == 1
        assert disjunctive_satisfied_count(log, 0b1001) == 3

    def test_empty_keep_covers_nothing(self):
        schema = Schema.anonymous(3)
        log = BooleanTable(schema, [0b001])
        assert disjunctive_satisfied_count(log, 0) == 0

    def test_disjunctive_at_least_conjunctive(self, paper_problem):
        """Sharing one attribute is weaker than containing all of them."""
        from repro.booldata.ops import satisfied_count

        keep = paper_problem.pad_to_budget(0)
        assert disjunctive_satisfied_count(
            paper_problem.log, keep
        ) >= satisfied_count(paper_problem.log, keep)


class TestExactness:
    def test_paper_example(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 2)
        _, ilp = solve_disjunctive_ilp(problem)
        _, brute = solve_disjunctive_brute_force(problem)
        assert ilp == brute
        # {four_door or power_doors} + anything touches 4 of 5 queries
        assert brute >= 4

    def test_unknown_backend_rejected(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            solve_disjunctive_ilp(VisibilityProblem(paper_log, paper_tuple, 2), "cplex")

    @pytest.mark.parametrize("backend", ["native", "scipy"])
    def test_backends_agree(self, backend, paper_log, paper_tuple):
        if backend == "scipy":
            pytest.importorskip("scipy")
        problem = VisibilityProblem(paper_log, paper_tuple, 3)
        _, value = solve_disjunctive_ilp(problem, backend)
        _, brute = solve_disjunctive_brute_force(problem)
        assert value == brute


class TestGreedyGuarantee:
    def test_greedy_bounded_by_optimum(self):
        rng = random.Random(2)
        for _ in range(20):
            width = rng.randint(2, 7)
            schema = Schema.anonymous(width)
            log = BooleanTable(
                schema, [rng.getrandbits(width) or 1 for _ in range(rng.randint(1, 15))]
            )
            problem = VisibilityProblem(log, rng.getrandbits(width), rng.randint(0, width))
            _, greedy = solve_disjunctive_greedy(problem)
            _, optimum = solve_disjunctive_brute_force(problem)
            assert greedy <= optimum
            # classic coverage guarantee (integer-safe: 0.63 < 1 - 1/e)
            assert greedy >= 0.63 * optimum - 1e-9

    def test_greedy_reports_consistent_count(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 2)
        keep, covered = solve_disjunctive_greedy(problem)
        assert covered == disjunctive_satisfied_count(paper_log, keep)
        assert keep & ~paper_tuple == 0


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_ilp_matches_brute_force_property(data):
    width = data.draw(st.integers(2, 6))
    schema = Schema.anonymous(width)
    queries = data.draw(
        st.lists(st.integers(1, (1 << width) - 1), max_size=12)
    )
    log = BooleanTable(schema, queries)
    new_tuple = data.draw(st.integers(0, (1 << width) - 1))
    budget = data.draw(st.integers(0, width))
    problem = VisibilityProblem(log, new_tuple, budget)
    _, ilp = solve_disjunctive_ilp(problem)
    _, brute = solve_disjunctive_brute_force(problem)
    assert ilp == brute
