"""Hypothesis property tests for the variant reductions.

Each reduction must be *semantics-preserving*: solving the reduced
Boolean instance and re-evaluating the answer in the original domain
must agree with direct evaluation in that domain.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BruteForceSolver
from repro.data.categorical import CategoricalSchema
from repro.data.numeric import NumericDataset, Range
from repro.variants import solve_categorical, solve_numeric
from repro.variants.categorical import reduce_categorical_to_boolean
from repro.variants.numeric import reduce_numeric_to_boolean


@st.composite
def categorical_instance(draw):
    attribute_count = draw(st.integers(1, 4))
    domains = {
        f"attr{i}": tuple(f"v{j}" for j in range(draw(st.integers(2, 3))))
        for i in range(attribute_count)
    }
    schema = CategoricalSchema(domains)
    new_tuple = {
        attribute: draw(st.sampled_from(domain))
        for attribute, domain in domains.items()
    }
    query_count = draw(st.integers(0, 8))
    queries = []
    for _ in range(query_count):
        chosen = draw(
            st.lists(
                st.sampled_from(sorted(domains)), min_size=1,
                max_size=attribute_count, unique=True,
            )
        )
        queries.append(
            {attribute: draw(st.sampled_from(domains[attribute])) for attribute in chosen}
        )
    budget = draw(st.integers(0, attribute_count))
    return schema, queries, new_tuple, budget


@settings(max_examples=40, deadline=None)
@given(categorical_instance())
def test_categorical_solution_counts_match_direct_evaluation(instance):
    schema, queries, new_tuple, budget = instance
    result = solve_categorical(BruteForceSolver(), schema, queries, new_tuple, budget)
    kept = set(result.kept)
    direct = sum(
        1
        for query in queries
        if all(
            attribute in kept and new_tuple[attribute] == value
            for attribute, value in query.items()
        )
    )
    assert direct == result.satisfied
    assert len(kept) <= budget
    for attribute, value in result.kept.items():
        assert new_tuple[attribute] == value


@settings(max_examples=40, deadline=None)
@given(categorical_instance())
def test_categorical_reduction_row_semantics(instance):
    schema, queries, new_tuple, budget = instance
    problem, bool_schema = reduce_categorical_to_boolean(
        schema, queries, new_tuple, drop_unsatisfiable=False
    )
    assert len(problem.log) == len(queries)
    for query, row in zip(queries, problem.log):
        mismatched = any(new_tuple[a] != v for a, v in query.items())
        has_marker = bool(row & ~problem.new_tuple)
        assert has_marker == mismatched


@st.composite
def numeric_instance(draw):
    attribute_count = draw(st.integers(1, 4))
    attributes = [f"n{i}" for i in range(attribute_count)]
    new_tuple = {a: float(draw(st.integers(0, 10))) for a in attributes}
    query_count = draw(st.integers(0, 8))
    queries = []
    for _ in range(query_count):
        chosen = draw(
            st.lists(st.sampled_from(attributes), min_size=1,
                     max_size=attribute_count, unique=True)
        )
        conditions = {}
        for attribute in chosen:
            low = draw(st.integers(0, 10))
            high = draw(st.integers(low, 10))
            conditions[attribute] = Range(float(low), float(high))
        queries.append(conditions)
    budget = draw(st.integers(0, attribute_count))
    return attributes, queries, new_tuple, budget


@settings(max_examples=40, deadline=None)
@given(numeric_instance())
def test_numeric_solution_counts_match_direct_evaluation(instance):
    attributes, queries, new_tuple, budget = instance
    dataset = NumericDataset(attributes, [dict(new_tuple)], queries)
    result = solve_numeric(BruteForceSolver(), dataset, new_tuple, budget)
    kept = set(result.kept)
    direct = sum(
        1
        for query in queries
        if all(
            attribute in kept and rng.contains(new_tuple[attribute])
            for attribute, rng in query.items()
        )
    )
    assert direct == result.satisfied
    assert len(kept) <= budget


@settings(max_examples=40, deadline=None)
@given(numeric_instance())
def test_numeric_reduction_bit_semantics(instance):
    attributes, queries, new_tuple, _ = instance
    log, tuple_mask, schema = reduce_numeric_to_boolean(attributes, queries, new_tuple)
    marker = 1 << schema.index_of("__out_of_range__")
    for query, row in zip(queries, log):
        any_miss = any(
            not rng.contains(new_tuple[attribute]) for attribute, rng in query.items()
        )
        assert bool(row & marker) == any_miss
        for attribute, rng in query.items():
            bit = 1 << schema.index_of(attribute)
            assert bool(row & bit) == rng.contains(new_tuple[attribute])
    assert tuple_mask & marker == 0
