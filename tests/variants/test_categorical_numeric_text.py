"""Tests for the categorical, numeric and text variant reductions."""

import pytest

from repro.common.errors import ValidationError
from repro.core import BruteForceSolver, ConsumeAttrSolver, MaxFreqItemsetsSolver
from repro.data import generate_ads_corpus, generate_categorical, generate_numeric
from repro.data.categorical import CategoricalSchema
from repro.data.numeric import NumericDataset, Range
from repro.variants import (
    reduce_categorical_to_boolean,
    reduce_numeric_to_boolean,
    select_ad_keywords,
    solve_categorical,
    solve_numeric,
)


class TestCategoricalReduction:
    @pytest.fixture
    def schema(self):
        return CategoricalSchema(
            {"make": ("honda", "ford"), "color": ("red", "blue"), "body": ("sedan", "suv")}
        )

    def test_matching_conditions_become_demands(self, schema):
        log = [{"make": "honda"}, {"make": "honda", "color": "red"}]
        new_tuple = {"make": "honda", "color": "red", "body": "sedan"}
        problem, bool_schema = reduce_categorical_to_boolean(schema, log, new_tuple)
        assert len(problem.log) == 2
        assert bool_schema.names_of(problem.log[1]) == ["make", "color"]

    def test_mismatching_queries_dropped(self, schema):
        log = [{"make": "ford"}, {"color": "red"}]
        new_tuple = {"make": "honda", "color": "red", "body": "sedan"}
        problem, _ = reduce_categorical_to_boolean(schema, log, new_tuple)
        assert len(problem.log) == 1

    def test_mismatching_queries_kept_with_marker(self, schema):
        log = [{"make": "ford"}]
        new_tuple = {"make": "honda", "color": "red", "body": "sedan"}
        problem, bool_schema = reduce_categorical_to_boolean(
            schema, log, new_tuple, drop_unsatisfiable=False
        )
        assert len(problem.log) == 1
        # the marker bit is outside the new tuple -> query unsatisfiable
        assert problem.log[0] & ~problem.new_tuple

    def test_incomplete_tuple_rejected(self, schema):
        with pytest.raises(ValidationError):
            reduce_categorical_to_boolean(schema, [], {"make": "honda"})

    def test_solve_returns_values(self, schema):
        log = [
            {"make": "honda"},
            {"make": "honda", "color": "red"},
            {"body": "suv"},
        ]
        new_tuple = {"make": "honda", "color": "red", "body": "sedan"}
        result = solve_categorical(BruteForceSolver(), schema, log, new_tuple, 2)
        assert result.kept == {"make": "honda", "color": "red"}
        assert result.satisfied == 2

    def test_generated_dataset_round_trip(self):
        dataset = generate_categorical(rows=30, queries=40, seed=3)
        new_tuple = dataset.rows[0]
        exact = solve_categorical(
            MaxFreqItemsetsSolver(), dataset.schema, dataset.query_log, new_tuple, 3
        )
        greedy = solve_categorical(
            ConsumeAttrSolver(), dataset.schema, dataset.query_log, new_tuple, 3
        )
        assert greedy.satisfied <= exact.satisfied
        assert set(exact.kept) <= set(new_tuple)


class TestNumericReduction:
    def test_paper_reduction_semantics(self):
        attributes = ["price", "weight"]
        log = [
            {"price": Range(100, 200)},                      # contains 150
            {"price": Range(0, 50)},                          # misses 150
            {"price": Range(100, 300), "weight": Range(0, 10)},  # second misses
        ]
        new_tuple = {"price": 150.0, "weight": 20.0}
        bool_log, tuple_mask, schema = reduce_numeric_to_boolean(
            attributes, log, new_tuple
        )
        assert len(bool_log) == 3
        assert schema.names_of(bool_log[0]) == ["price"]
        # missed conditions raise the impossible marker
        assert "__out_of_range__" in schema.names_of(bool_log[1])
        assert "__out_of_range__" in schema.names_of(bool_log[2])
        # the Boolean tuple is all-ones over real attributes, marker off
        assert schema.names_of(tuple_mask) == attributes

    def test_solve_numeric_exactness(self):
        dataset = generate_numeric(rows=50, queries=60, seed=5)
        new_tuple = dict(dataset.rows[0])
        exact = solve_numeric(BruteForceSolver(), dataset, new_tuple, 3)
        # verify against direct counting: a query is satisfied iff all its
        # conditions are on kept attributes and contain the tuple's value
        kept = set(exact.kept)
        direct = sum(
            1
            for query in dataset.query_log
            if all(
                attribute in kept and rng.contains(new_tuple[attribute])
                for attribute, rng in query.items()
            )
        )
        assert direct == exact.satisfied

    def test_incomplete_tuple_rejected(self):
        with pytest.raises(ValidationError):
            reduce_numeric_to_boolean(["a"], [], {})

    def test_budget_zero(self):
        dataset = generate_numeric(rows=10, queries=10, seed=6)
        result = solve_numeric(BruteForceSolver(), dataset, dict(dataset.rows[0]), 0)
        assert result.kept == {}


class TestTextVariant:
    def test_keywords_come_from_ad(self):
        selection = select_ad_keywords(
            "sunny two bedroom apartment downtown",
            [["sunny"], ["downtown", "apartment"], ["castle"]],
            budget=2,
        )
        assert set(selection.keywords) <= {
            "sunny", "two", "bedroom", "apartment", "downtown",
        }
        assert len(selection.keywords) == 2

    def test_exact_solver_beats_or_ties_greedy(self):
        corpus, log = generate_ads_corpus(documents=60, queries=80, seed=7)
        ad = "sunny two bedroom apartment with parking and balcony downtown"
        greedy = select_ad_keywords(ad, log, 3, corpus=corpus)
        exact = select_ad_keywords(ad, log, 3, solver=MaxFreqItemsetsSolver(), corpus=corpus)
        assert greedy.satisfied_queries <= exact.satisfied_queries

    def test_satisfied_query_semantics(self):
        log = [["a", "b"], ["a"], ["c"]]
        selection = select_ad_keywords("a b x y", log, budget=2,
                                       solver=BruteForceSolver())
        # keeping {a, b} satisfies both first queries
        assert selection.satisfied_queries == 2

    def test_empty_ad_rejected(self):
        with pytest.raises(ValidationError):
            select_ad_keywords("!!!", [["a"]], 1)

    def test_vocabulary_size_reported(self):
        corpus, log = generate_ads_corpus(documents=30, queries=10, seed=8)
        selection = select_ad_keywords("apartment rent downtown", log, 1, corpus=corpus)
        assert selection.vocabulary_size == len(corpus.vocabulary)


class TestTextTopkVariant:
    @pytest.fixture
    def small_corpus(self):
        from repro.retrieval.text import TextDatabase

        return TextDatabase(
            [
                "sunny apartment downtown",
                "quiet apartment parking",
                "sunny house garden",
                "downtown loft parking",
            ]
        )

    def test_selection_within_ad_and_budget(self, small_corpus):
        from repro.variants.text import select_ad_keywords_topk

        selection = select_ad_keywords_topk(
            "sunny downtown apartment with parking",
            [["sunny"], ["downtown", "apartment"], ["parking"]],
            budget=2,
            corpus=small_corpus,
            k=2,
        )
        assert len(selection.keywords) <= 2
        assert set(selection.keywords) <= {"sunny", "downtown", "apartment", "with", "parking"}
        assert selection.algorithm == "GreedyBm25TopK"

    def test_visibility_counts_topk_membership(self, small_corpus):
        from repro.retrieval.text import Bm25Scorer, TextDatabase
        from repro.variants.text import select_ad_keywords_topk

        query_log = [["sunny"], ["parking"], ["garden"]]
        selection = select_ad_keywords_topk(
            "sunny parking", query_log, budget=2, corpus=small_corpus, k=10
        )
        # verify the reported count by re-ranking manually
        extended = TextDatabase(
            small_corpus.raw_documents + [" ".join(selection.keywords)]
        )
        scorer = Bm25Scorer(extended)
        ad_index = len(extended) - 1
        manual = sum(
            1
            for query in query_log
            if any(i == ad_index for i, _ in scorer.top_k(query, 10))
        )
        assert manual == selection.satisfied_queries

    def test_small_k_reduces_visibility(self, small_corpus):
        from repro.variants.text import select_ad_keywords_topk

        query_log = [["apartment"], ["sunny"], ["parking"], ["downtown"]]
        wide = select_ad_keywords_topk(
            "sunny downtown apartment parking", query_log, 3, small_corpus, k=10
        )
        narrow = select_ad_keywords_topk(
            "sunny downtown apartment parking", query_log, 3, small_corpus, k=1
        )
        assert narrow.satisfied_queries <= wide.satisfied_queries

    def test_empty_ad_rejected(self, small_corpus):
        from repro.common.errors import ValidationError
        from repro.variants.text import select_ad_keywords_topk

        with pytest.raises(ValidationError):
            select_ad_keywords_topk(" . ", [["a"]], 1, small_corpus)

    def test_negative_budget_rejected(self, small_corpus):
        from repro.common.errors import ValidationError
        from repro.variants.text import select_ad_keywords_topk

        with pytest.raises(ValidationError):
            select_ad_keywords_topk("sunny", [["sunny"]], -1, small_corpus)
