"""Tests for SOC-CB-D and the per-attribute variant."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.core import (
    BruteForceSolver,
    ConsumeAttrSolver,
    MaxFreqItemsetsSolver,
    VisibilityProblem,
)
from repro.variants import solve_cbd, solve_per_attribute
from repro.variants.cbd import database_visibility_problem


class TestCbd:
    def test_paper_example(self, paper_database, paper_tuple):
        solution = solve_cbd(MaxFreqItemsetsSolver(), paper_database, paper_tuple, 4)
        assert solution.satisfied == 4
        assert solution.kept_attributes == [
            "ac", "four_door", "power_doors", "power_brakes",
        ]

    def test_problem_construction(self, paper_database, paper_tuple):
        problem = database_visibility_problem(paper_database, paper_tuple, 4)
        assert problem.log is paper_database
        assert problem.budget == 4

    def test_any_solver_works(self, paper_database, paper_tuple):
        exact = solve_cbd(BruteForceSolver(), paper_database, paper_tuple, 4)
        greedy = solve_cbd(ConsumeAttrSolver(), paper_database, paper_tuple, 4)
        assert greedy.satisfied <= exact.satisfied

    def test_domination_semantics(self, paper_database, paper_tuple):
        """satisfied counts exactly the dominated database rows."""
        solution = solve_cbd(BruteForceSolver(), paper_database, paper_tuple, 4)
        dominated = sum(
            1 for row in paper_database if row & solution.keep_mask == row
        )
        assert dominated == solution.satisfied


class TestPerAttribute:
    def test_sweep_covers_all_budgets(self, paper_log, paper_tuple):
        result = solve_per_attribute(MaxFreqItemsetsSolver(), paper_log, paper_tuple)
        assert set(result.sweep) == set(range(1, 6))  # |t| = 5

    def test_best_ratio_on_paper_example(self, paper_log, paper_tuple):
        result = solve_per_attribute(BruteForceSolver(), paper_log, paper_tuple)
        # best ratio: 3 queries / 3 attributes = 1.0
        assert result.ratio == pytest.approx(1.0)
        assert result.best.satisfied == 3
        assert result.best.keep_mask.bit_count() == 3

    def test_padding_stripped_from_sweep(self, paper_log, paper_tuple):
        """At m=5 the optimum needs only 4 attributes (auto_trans helps no
        query); the padded fifth must be stripped or the ratio objective
        would be corrupted."""
        result = solve_per_attribute(BruteForceSolver(), paper_log, paper_tuple)
        entry = result.sweep[5]
        assert entry.satisfied == 4
        assert entry.keep_mask.bit_count() == 4

    def test_ratio_is_consistent(self, paper_log, paper_tuple):
        result = solve_per_attribute(BruteForceSolver(), paper_log, paper_tuple)
        best = result.best
        assert result.ratio == pytest.approx(
            best.satisfied / best.keep_mask.bit_count()
        )

    def test_empty_tuple(self, paper_log):
        result = solve_per_attribute(BruteForceSolver(), paper_log, 0)
        assert result.ratio == 0.0
        assert result.best.satisfied == 0

    def test_tie_broken_toward_fewer_attributes(self):
        schema = Schema.anonymous(4)
        # {a0} satisfied by 2 queries; {a1,a2} by 4 -> ratios 2.0 vs 2.0;
        # prefer the single attribute
        log = BooleanTable(schema, [0b0001] * 2 + [0b0110] * 4)
        result = solve_per_attribute(BruteForceSolver(), log, 0b0111)
        assert result.ratio == pytest.approx(2.0)
        assert result.best.keep_mask.bit_count() == 1

    def test_greedy_solver_allowed(self, paper_log, paper_tuple):
        result = solve_per_attribute(ConsumeAttrSolver(), paper_log, paper_tuple)
        exact = solve_per_attribute(BruteForceSolver(), paper_log, paper_tuple)
        assert result.ratio <= exact.ratio + 1e-9
