"""Tests for batch inventory optimization."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import BruteForceSolver, ConsumeAttrSolver
from repro.data import generate_cars, synthetic_workload
from repro.variants.batch import InventoryReport, optimize_inventory


@pytest.fixture(scope="module")
def inventory():
    cars = generate_cars(300, seed=44)
    log = synthetic_workload(cars.schema, 250, seed=45)
    tuples = [cars.table[i] for i in cars.random_car_indices(8, seed=46)]
    return log, tuples


class TestOptimizeInventory:
    def test_one_solution_per_listing(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4)
        assert len(report.solutions) == len(tuples)

    def test_indexed_path_matches_direct_exact_solve(self, inventory):
        """Sharing the preprocessing index must not change any optimum."""
        log, tuples = inventory
        shared = optimize_inventory(log, tuples, budget=4, share_index=True)
        direct = optimize_inventory(log, tuples, budget=4, share_index=False)
        for indexed, exact in zip(shared.solutions, direct.solutions):
            assert indexed.satisfied == exact.satisfied

    def test_custom_solver(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4, solver=ConsumeAttrSolver())
        exact = optimize_inventory(log, tuples, budget=4)
        assert report.total_visibility <= exact.total_visibility

    def test_empty_inventory_rejected(self, inventory):
        log, _ = inventory
        with pytest.raises(ValidationError):
            optimize_inventory(log, [], 3)

    def test_negative_budget_rejected(self, inventory):
        log, tuples = inventory
        with pytest.raises(ValidationError):
            optimize_inventory(log, tuples, -1)

    @pytest.mark.parametrize("bad", [0, -3, 0.0, -0.5, 1.5, True])
    def test_bad_index_threshold_rejected_up_front(self, inventory, bad):
        """Regression: an int threshold < 1 used to reach the DFS miner
        and die with a raw ValueError instead of a ValidationError."""
        log, tuples = inventory
        with pytest.raises(ValidationError):
            optimize_inventory(log, tuples, budget=4, index_threshold=bad)

    def test_bad_index_threshold_rejected_even_when_index_unused(self, inventory):
        """Validation happens before the share_index/solver dispatch."""
        log, tuples = inventory
        with pytest.raises(ValidationError):
            optimize_inventory(
                log, tuples, budget=4, share_index=False, index_threshold=0
            )

    def test_absolute_int_threshold_works(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4, index_threshold=10)
        exact = optimize_inventory(log, tuples, budget=4, share_index=False)
        for indexed, plain in zip(report.solutions, exact.solutions):
            assert indexed.satisfied == plain.satisfied

    def test_small_instance_against_brute_force(self):
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00011, 0b00110, 0b11000, 0b00011])
        tuples = [0b00111, 0b11110, 0b00001]
        report = optimize_inventory(log, tuples, budget=2)
        brute = BruteForceSolver()
        for new_tuple, solution in zip(tuples, report.solutions):
            from repro.core import VisibilityProblem

            expected = brute.solve(VisibilityProblem(log, new_tuple, 2)).satisfied
            assert solution.satisfied == expected


class TestReport:
    def test_aggregates(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4)
        assert report.total_visibility == sum(s.satisfied for s in report.solutions)
        assert report.mean_visibility == pytest.approx(
            report.total_visibility / len(tuples)
        )
        assert 0 <= report.invisible_count <= len(tuples)

    def test_top_listings_sorted(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4)
        top = report.top_listings(3)
        values = [solution.satisfied for _, solution in top]
        assert values == sorted(values, reverse=True)

    def test_text_rendering(self, inventory):
        log, tuples = inventory
        report = optimize_inventory(log, tuples, budget=4)
        text = report.to_text()
        assert "inventory: 8 listings" in text
        assert "top listings:" in text

    def test_empty_report_statistics(self):
        report = InventoryReport([], 3)
        assert report.mean_visibility == 0.0
        assert report.total_visibility == 0
