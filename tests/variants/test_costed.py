"""Tests for the costed (heterogeneous attribute cost) extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import BruteForceSolver, VisibilityProblem
from repro.variants.costed import (
    CostedVisibilityProblem,
    solve_costed_brute_force,
    solve_costed_density_greedy,
    solve_costed_ilp,
)


class TestProblemValidation:
    def test_cost_length_checked(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            CostedVisibilityProblem(paper_log, paper_tuple, (1.0,), 3.0)

    def test_negative_cost_rejected(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            CostedVisibilityProblem(paper_log, paper_tuple, (-1.0,) * 6, 3.0)

    def test_negative_budget_rejected(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            CostedVisibilityProblem(paper_log, paper_tuple, (1.0,) * 6, -1.0)

    def test_evaluate_enforces_budget(self, paper_log, paper_schema, paper_tuple):
        problem = CostedVisibilityProblem(paper_log, paper_tuple, (2.0,) * 6, 3.0)
        with pytest.raises(ValidationError):
            problem.evaluate(paper_schema.mask_of(["ac", "four_door"]))  # cost 4 > 3


class TestUnitCostsReduceToOriginal:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_matches_cardinality_solvers(self, data):
        width = data.draw(st.integers(2, 6))
        schema = Schema.anonymous(width)
        queries = [
            data.draw(st.integers(1, (1 << width) - 1))
            for _ in range(data.draw(st.integers(0, 12)))
        ]
        log = BooleanTable(schema, queries)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        budget = data.draw(st.integers(0, width))
        plain = BruteForceSolver().solve(VisibilityProblem(log, new_tuple, budget))
        costed = CostedVisibilityProblem.with_unit_costs(log, new_tuple, budget)
        assert solve_costed_brute_force(costed).satisfied == plain.satisfied
        assert solve_costed_ilp(costed).satisfied == plain.satisfied


class TestHeterogeneousCosts:
    @pytest.fixture
    def problem(self, paper_log, paper_tuple):
        # power_doors is expensive; everything else cheap
        costs = (1.0, 1.0, 1.0, 5.0, 1.0, 1.0)
        return CostedVisibilityProblem(paper_log, paper_tuple, costs, 4.0)

    def test_expensive_attribute_excluded_when_budget_tight(
        self, problem, paper_schema
    ):
        solution = solve_costed_ilp(problem)
        # budget 4 cannot afford power_doors (5); the best affordable
        # selection satisfies only q1 = {ac, four_door}
        assert solution.satisfied == 1
        assert not solution.keep_mask & paper_schema.mask_of(["power_doors"])

    def test_larger_budget_recovers_power_doors(self, paper_log, paper_tuple, paper_schema):
        costs = (1.0, 1.0, 1.0, 5.0, 1.0, 1.0)
        problem = CostedVisibilityProblem(paper_log, paper_tuple, costs, 7.0)
        solution = solve_costed_ilp(problem)
        assert solution.keep_mask & paper_schema.mask_of(["power_doors"])
        assert solution.satisfied == 3

    def test_brute_force_agrees(self, problem):
        assert (
            solve_costed_brute_force(problem).satisfied
            == solve_costed_ilp(problem).satisfied
        )

    def test_cost_reported(self, problem):
        solution = solve_costed_ilp(problem)
        assert solution.cost == problem.cost_of(solution.keep_mask)
        assert solution.cost <= problem.budget + 1e-9

    def test_zero_cost_attributes_are_free(self, paper_log, paper_tuple):
        problem = CostedVisibilityProblem(
            paper_log, paper_tuple, (0.0,) * 6, 0.0
        )
        solution = solve_costed_ilp(problem)
        # everything is free: keep the whole tuple, satisfy all 4 satisfiable
        assert solution.satisfied == 4

    @pytest.mark.parametrize("backend", ["native", "scipy"])
    def test_backends_agree(self, backend, problem):
        if backend == "scipy":
            pytest.importorskip("scipy")
        assert solve_costed_ilp(problem, backend).satisfied == 1


class TestDensityGreedy:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_bounded_and_feasible(self, data):
        width = data.draw(st.integers(2, 6))
        schema = Schema.anonymous(width)
        queries = [
            data.draw(st.integers(1, (1 << width) - 1))
            for _ in range(data.draw(st.integers(0, 10)))
        ]
        log = BooleanTable(schema, queries)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        costs = tuple(
            float(data.draw(st.integers(1, 4))) for _ in range(width)
        )
        budget = float(data.draw(st.integers(0, 4 * width)))
        problem = CostedVisibilityProblem(log, new_tuple, costs, budget)
        greedy = solve_costed_density_greedy(problem)
        exact = solve_costed_brute_force(problem)
        assert greedy.satisfied <= exact.satisfied
        assert greedy.cost <= budget + 1e-9
        assert greedy.keep_mask & ~new_tuple == 0

    def test_prefers_cheap_equally_useful_attribute(self):
        schema = Schema.anonymous(3)
        log = BooleanTable(schema, [0b001] * 3 + [0b010] * 3)
        # a0 and a1 complete equally many queries; a0 is cheaper
        problem = CostedVisibilityProblem(log, 0b011, (1.0, 3.0, 1.0), 1.0)
        greedy = solve_costed_density_greedy(problem)
        assert greedy.keep_mask == 0b001


class TestBudgetGuard:
    def test_brute_force_node_budget(self, paper_log, paper_tuple):
        from repro.common.errors import SolverBudgetExceededError

        problem = CostedVisibilityProblem.with_unit_costs(paper_log, paper_tuple, 3)
        with pytest.raises(SolverBudgetExceededError):
            solve_costed_brute_force(problem, max_nodes=2)

    def test_unknown_backend(self, paper_log, paper_tuple):
        problem = CostedVisibilityProblem.with_unit_costs(paper_log, paper_tuple, 3)
        with pytest.raises(ValidationError):
            solve_costed_ilp(problem, backend="xpress")
