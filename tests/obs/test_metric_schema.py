"""Metric-schema drift check: emitted names ≡ declared names.

A static scan of ``src/repro/`` for quoted ``repro_*`` literals, compared
against :data:`repro.obs.schema.DECLARED_METRICS` in both directions:

* a metric emitted but not declared would silently miss pre-declaration
  (its family absent from expositions until first use — scrape targets
  drift);
* a metric declared but never emitted is a dead family polluting every
  scrape.

``schema.py`` itself is excluded from the scan (it *is* the declaration
side), and the few quoted ``repro_*`` strings that are not metric names
are allowlisted explicitly so a new one has to be justified here.
"""

import re
from pathlib import Path

import repro
from repro.obs.schema import DECLARED_METRICS, WINDOWED_HISTOGRAMS

SRC_ROOT = Path(repro.__file__).resolve().parent

#: quoted repro_* literals that are deliberately not metric names
NON_METRIC_LITERALS = {
    "repro_obs_span",         # the tracing ContextVar's name
    "repro_active_deadline",  # the deadline ContextVar's name
    "repro_demo_total",       # the metrics module's doctest example
}

_LITERAL = re.compile(r"""["'](repro_[a-z0-9_]+)["']""")


def _emitted_names() -> dict[str, set[str]]:
    """Every quoted ``repro_*`` literal outside the schema module, mapped
    to the files that mention it."""
    found: dict[str, set[str]] = {}
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.name == "schema.py" and path.parent.name == "obs":
            continue
        for name in _LITERAL.findall(path.read_text()):
            found.setdefault(name, set()).add(
                str(path.relative_to(SRC_ROOT.parent))
            )
    return found


def _declared_names() -> set[str]:
    return {name for _kind, name, _help, _labels in DECLARED_METRICS}


def test_every_emitted_metric_is_declared():
    emitted = _emitted_names()
    undeclared = set(emitted) - _declared_names() - NON_METRIC_LITERALS
    assert not undeclared, (
        "metric literals emitted in src/repro/ but missing from "
        "repro.obs.schema.DECLARED_METRICS: "
        + ", ".join(
            f"{name} ({', '.join(sorted(emitted[name]))})"
            for name in sorted(undeclared)
        )
    )


def test_every_declared_metric_is_emitted_somewhere():
    dead = _declared_names() - set(_emitted_names())
    assert not dead, (
        "families declared in repro.obs.schema.DECLARED_METRICS but never "
        "emitted anywhere in src/repro/: " + ", ".join(sorted(dead))
    )


def test_allowlist_entries_are_real_and_not_declared():
    emitted = set(_emitted_names())
    declared = _declared_names()
    for literal in NON_METRIC_LITERALS:
        assert literal in emitted, f"stale allowlist entry: {literal}"
        assert literal not in declared, (
            f"{literal} is allowlisted as a non-metric but also declared"
        )


def test_declarations_are_well_formed_and_unique():
    names = [name for _kind, name, _help, _labels in DECLARED_METRICS]
    assert len(names) == len(set(names)), "duplicate declared metric"
    for kind, name, help_text, labelnames in DECLARED_METRICS:
        assert kind in ("counter", "gauge", "histogram"), (kind, name)
        assert re.fullmatch(r"repro_[a-z0-9_]+", name), name
        assert help_text.endswith("."), f"{name} help should be a sentence"
        assert isinstance(labelnames, tuple), name
        if kind == "counter":
            assert name.endswith("_total"), (
                f"counter {name} should carry the _total suffix"
            )


def test_windowed_histograms_are_declared_histograms():
    histograms = {
        name for kind, name, _h, _l in DECLARED_METRICS if kind == "histogram"
    }
    assert WINDOWED_HISTOGRAMS <= histograms
