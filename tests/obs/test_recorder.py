"""The global recorder switch and the pre-declared metric schema."""

import pytest

from repro.common.errors import ValidationError
from repro.obs import (
    DECLARED_METRICS,
    NULL_RECORDER,
    Recorder,
    bitmap_ops_snapshot,
    get_recorder,
    observed_phase,
    record_bitmap_ops,
    recording,
    set_recorder,
)
from repro.obs.recorder import NullRecorder


class TestNullRecorder:
    def test_default_recorder_is_the_shared_null(self):
        assert get_recorder() is NULL_RECORDER
        assert not get_recorder().enabled

    def test_null_methods_are_no_ops(self):
        NULL_RECORDER.count("repro_anything_total", 5)
        NULL_RECORDER.gauge("repro_depth", 1)
        NULL_RECORDER.observe("repro_lat_seconds", 0.1)
        with NULL_RECORDER.span("ignored", key="value") as span:
            assert span.set(more="attrs") is span

    def test_null_recorder_is_slotted(self):
        with pytest.raises(AttributeError):
            NullRecorder().accidental_state = 1


class TestRecordingScope:
    def test_recording_installs_and_restores(self):
        with recording(Recorder()) as recorder:
            assert get_recorder() is recorder
            assert recorder.enabled
        assert get_recorder() is NULL_RECORDER

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording(Recorder()):
                raise RuntimeError
        assert get_recorder() is NULL_RECORDER

    def test_nested_recordings_restore_the_outer_one(self):
        with recording(Recorder()) as outer:
            with recording(Recorder()) as inner:
                assert get_recorder() is inner
            assert get_recorder() is outer

    def test_recording_defaults_to_a_fresh_recorder(self):
        with recording() as recorder:
            recorder.count("repro_simplex_pivots_total", 3)
        assert recorder.metrics.counter_total("repro_simplex_pivots_total") == 3.0

    def test_set_recorder_none_restores_null(self):
        set_recorder(Recorder())
        try:
            assert get_recorder().enabled
        finally:
            set_recorder(None)
        assert get_recorder() is NULL_RECORDER


class TestDeclaredSchema:
    def test_every_declared_family_appears_in_exposition(self):
        text = Recorder().metrics.to_prometheus()
        for _kind, name, _help, _labels in DECLARED_METRICS:
            assert f"# TYPE {name} " in text

    def test_declared_names_are_unique_and_prefixed(self):
        names = [name for _kind, name, _help, _labels in DECLARED_METRICS]
        assert len(names) == len(set(names))
        assert all(name.startswith("repro_") for name in names)

    def test_counters_end_in_total_histograms_in_seconds(self):
        for kind, name, _help, _labels in DECLARED_METRICS:
            if kind == "counter":
                assert name.endswith("_total"), name
            elif kind == "histogram":
                assert name.endswith("_seconds"), name
            else:  # gauges state a level, never a cumulative total
                assert kind == "gauge", (kind, name)
                assert not name.endswith("_total"), name

    def test_declared_labels_are_enforced(self):
        recorder = Recorder()
        with pytest.raises(ValidationError):
            recorder.count("repro_solver_solves_total", 1, {"wrong": "x"})

    def test_declare_false_starts_empty(self):
        recorder = Recorder(declare=False)
        assert recorder.metrics.to_prometheus() == ""


class TestBitmapOpsHelpers:
    def test_snapshot_of_plain_object_is_zero(self):
        assert bitmap_ops_snapshot(object()) == (0, 0, 0)

    def test_snapshot_reads_cached_index(self, paper_log):
        index = paper_log.vertical_index()
        index.satisfied_count(paper_log[0])
        snapshot = bitmap_ops_snapshot(paper_log)
        assert snapshot == index.ops_snapshot()
        assert snapshot[2] >= 1  # at least the one popcount

    def test_record_bitmap_ops_emits_deltas_only(self, paper_log):
        index = paper_log.vertical_index()
        before = bitmap_ops_snapshot(paper_log)
        index.satisfied_count(paper_log[0])
        recorder = Recorder()
        record_bitmap_ops(recorder, paper_log, before)
        total = recorder.metrics.counter_total("repro_index_bitmap_ops_total")
        after = bitmap_ops_snapshot(paper_log)
        assert total == sum(after) - sum(before) > 0

    def test_record_bitmap_ops_without_new_work_counts_nothing(self, paper_log):
        paper_log.vertical_index()
        before = bitmap_ops_snapshot(paper_log)
        recorder = Recorder()
        record_bitmap_ops(recorder, paper_log, before)
        assert recorder.metrics.counter_total("repro_index_bitmap_ops_total") == 0.0


class TestObservedPhase:
    def test_disabled_phase_is_transparent(self):
        with observed_phase("load"):
            pass  # no recorder installed: nothing to assert beyond "no crash"

    def test_enabled_phase_records_span_and_histogram(self):
        with recording(Recorder()) as recorder:
            with observed_phase(
                "query", histogram="repro_marketplace_query_seconds", size=3
            ):
                pass
        (span,) = recorder.tracer.spans_named("query")
        assert span.attributes == {"size": 3}
        histogram = recorder.metrics.get("repro_marketplace_query_seconds")
        assert histogram.sample_dicts()[0]["count"] == 1
