"""The sampling profiler: phase labels, collapsed stacks, zero-cost off."""

import threading
import time

import pytest

from repro.common.errors import ValidationError
from repro.obs import Recorder, SamplingProfiler, profiled_phase, recording


def _burn(deadline_s=0.05):
    """Busy loop long enough for a 1 ms sampler to land several hits."""
    end = time.perf_counter() + deadline_s
    total = 0
    while time.perf_counter() < end:
        total += sum(range(200))
    return total


class TestLifecycle:
    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValidationError):
            SamplingProfiler(max_depth=0)

    def test_context_manager_starts_and_stops(self):
        profiler = SamplingProfiler(interval_s=0.001)
        assert not profiler.running
        with profiler:
            assert profiler.running
        assert not profiler.running

    def test_double_start_is_rejected(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            with pytest.raises(ValidationError):
                profiler.start()

    def test_stop_without_start_is_a_noop(self):
        SamplingProfiler().stop()


class TestSampling:
    def test_samples_land_while_working(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            _burn()
        assert profiler.sample_count > 0
        assert profiler.collapsed()  # at least one collapsed stack line

    def test_phase_labels_attribute_samples(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            with profiler.phase("solve"):
                _burn()
        phases = profiler.phases()
        assert phases.get("solve", 0) > 0

    def test_phases_nest_innermost_wins(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler.phase("stream_tick"):
            assert profiler._phase == "stream_tick"
            with profiler.phase("solve"):
                assert profiler._phase == "solve"
            assert profiler._phase == "stream_tick"
        assert profiler._phase == "idle"

    def test_collapsed_lines_carry_phase_and_count(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            with profiler.phase("solve"):
                _burn()
        lines = [line for line in profiler.collapsed() if line.startswith("solve;")]
        assert lines
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack  # phase;module:func;...

    def test_collapsed_filtered_by_phase_drops_the_label(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            with profiler.phase("solve"):
                _burn()
        for line in profiler.collapsed("solve"):
            assert not line.startswith("solve;")

    def test_dump_and_clear(self, tmp_path):
        with SamplingProfiler(interval_s=0.001) as profiler:
            _burn()
        target = tmp_path / "flame.txt"
        written = profiler.dump(target)
        assert written == len(target.read_text().splitlines())
        profiler.clear()
        assert profiler.sample_count == 0
        assert profiler.collapsed() == []

    def test_samples_only_the_target_thread(self):
        done = threading.Event()

        def background():
            while not done.is_set():
                sum(range(100))

        worker = threading.Thread(target=background, daemon=True)
        worker.start()
        try:
            with SamplingProfiler(interval_s=0.001) as profiler:
                time.sleep(0.02)  # this (target) thread sleeps; worker burns
            # sleeping stacks are fine, but no stack may come from the worker
            assert all("background" not in line for line in profiler.collapsed())
        finally:
            done.set()


class TestProfiledPhase:
    def test_noop_without_a_recorder(self):
        with profiled_phase("solve"):
            pass  # must not raise; NULL_RECORDER has profiler=None

    def test_noop_with_a_recorder_but_no_profiler(self):
        with recording(Recorder()):
            with profiled_phase("solve"):
                pass

    def test_labels_the_attached_profiler(self):
        recorder = Recorder()
        recorder.profiler = SamplingProfiler(interval_s=0.001)
        with recording(recorder):
            with recorder.profiler:
                with profiled_phase("store_checkpoint"):
                    _burn()
        assert recorder.profiler.phases().get("store_checkpoint", 0) > 0

    def test_exposition_publishes_sample_gauges(self):
        recorder = Recorder()
        recorder.profiler = SamplingProfiler(interval_s=0.001)
        with recorder.profiler:
            with recorder.profiler.phase("solve"):
                _burn()
        rendered = recorder.export_prometheus()
        assert 'repro_profile_samples{phase="solve"}' in rendered
