"""The metrics registry: families, labels, and both expositions."""

import json
import math

import pytest

from repro.common.errors import ValidationError
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_unlabeled_counter_starts_at_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        assert registry.counter_total("repro_x_total") == 0.0
        assert "repro_x_total 0" in registry.to_prometheus()

    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("repro_x_total", 2)
        registry.inc("repro_x_total")
        assert registry.counter_total("repro_x_total") == 3.0

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.inc("repro_x_total", -1)

    def test_labeled_counter_keeps_series_apart(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("algorithm",))
        registry.inc("repro_x_total", 1, {"algorithm": "ILP"})
        registry.inc("repro_x_total", 2, {"algorithm": "Greedy"})
        assert registry.counter_total("repro_x_total") == 3.0
        values = registry.counter_values()
        assert values['repro_x_total{algorithm="ILP"}'] == 1.0
        assert values['repro_x_total{algorithm="Greedy"}'] == 2.0

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("algorithm",))
        with pytest.raises(ValidationError):
            registry.inc("repro_x_total", 1, {"wrong": "label"})
        with pytest.raises(ValidationError):
            registry.inc("repro_x_total", 1)

    def test_redeclaration_is_idempotent_but_shape_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", "x", ("a",))
        assert registry.counter("repro_x_total", "x", ("a",)) is family
        with pytest.raises(ValidationError):
            registry.counter("repro_x_total", "x", ("b",))
        with pytest.raises(ValidationError):
            registry.histogram("repro_x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("bad name")
        with pytest.raises(ValidationError):
            registry.counter("repro_ok_total", "x", ("bad-label",))
        with pytest.raises(ValidationError):
            registry.counter("repro_ok_total", "x", ("__reserved",))


class TestGauge:
    def test_set_replaces_and_inc_adds(self):
        registry = MetricsRegistry()
        registry.set_gauge("repro_depth", 5)
        registry.set_gauge("repro_depth", 2)
        assert registry.get("repro_depth").sample_dicts()[0]["value"] == 2.0
        registry.get("repro_depth").inc(-1)
        assert registry.get("repro_depth").sample_dicts()[0]["value"] == 1.0

    def test_gauges_are_not_counters(self):
        registry = MetricsRegistry()
        registry.set_gauge("repro_depth", 5)
        assert "repro_depth" not in registry.counter_values()
        with pytest.raises(ValidationError):
            registry.counter_total("repro_depth")


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("repro_lat_seconds", "lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            registry.observe("repro_lat_seconds", value)
        text = registry.to_prometheus()
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text
        assert "repro_lat_seconds_sum 6.05" in text

    def test_sample_dicts_mirror_series(self):
        registry = MetricsRegistry()
        registry.histogram("repro_lat_seconds", "lat", buckets=(1.0,))
        registry.observe("repro_lat_seconds", 0.5)
        (sample,) = registry.get("repro_lat_seconds").sample_dicts()
        assert sample["count"] == 1
        assert sample["sum"] == 0.5
        assert sample["buckets"]["1"] == 1

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(10.0)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_bucket_list_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.histogram("repro_lat_seconds", buckets=())


class TestExposition:
    def test_prometheus_text_has_help_and_type_headers(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "Things counted.")
        text = registry.to_prometheus()
        assert "# HELP repro_x_total Things counted." in text
        assert "# TYPE repro_x_total counter" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("q",))
        registry.inc("repro_x_total", 1, {"q": 'a"b\\c\nd'})
        assert '{q="a\\"b\\\\c\\nd"}' in registry.to_prometheus()

    def test_json_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.inc("repro_x_total", 7)
        registry.observe("repro_lat_seconds", 0.02)
        snapshot = json.loads(registry.to_json())
        assert snapshot["repro_x_total"]["type"] == "counter"
        assert snapshot["repro_x_total"]["samples"][0]["value"] == 7
        assert snapshot["repro_lat_seconds"]["type"] == "histogram"
        assert snapshot["repro_lat_seconds"]["samples"][0]["count"] == 1

    def test_write_dispatches_on_format(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("repro_x_total")
        prom = tmp_path / "m.prom"
        with prom.open("w") as stream:
            registry.write(stream, "prom")
        assert "repro_x_total 1" in prom.read_text()
        with pytest.raises(ValidationError):
            registry.write(prom.open("w"), "xml")

    def test_integer_samples_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.inc("repro_x_total", 2.0)
        assert "repro_x_total 2\n" in registry.to_prometheus()

    def test_float_samples_keep_precision(self):
        registry = MetricsRegistry()
        registry.inc("repro_x_total", 0.125)
        assert "repro_x_total 0.125" in registry.to_prometheus()
        assert math.isclose(registry.counter_total("repro_x_total"), 0.125)
