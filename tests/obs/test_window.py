"""Sliding-window quantiles: decay, estimation, exposition gauges."""

import pytest

from repro.common.errors import ValidationError
from repro.obs import Recorder, SlidingWindowHistogram, WindowedQuantiles
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import WINDOWED_HISTOGRAMS


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSlidingWindowHistogram:
    def test_validates_geometry(self):
        with pytest.raises(ValidationError):
            SlidingWindowHistogram(window_s=0)
        with pytest.raises(ValidationError):
            SlidingWindowHistogram(slots=0)
        with pytest.raises(ValidationError):
            SlidingWindowHistogram(buckets=())

    def test_count_and_sum_track_live_observations(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(window_s=10, slots=5, clock=clock)
        for value in (0.01, 0.02, 0.03):
            window.observe(value)
        assert window.count() == 3
        assert window.sum() == pytest.approx(0.06)

    def test_observations_age_out_after_the_window(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(window_s=10, slots=5, clock=clock)
        window.observe(0.5)
        clock.now = 9.0  # still inside
        assert window.count() == 1
        clock.now = 20.0  # aged out
        assert window.count() == 0
        assert window.quantile(0.5) is None

    def test_slices_expire_one_at_a_time(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(window_s=10, slots=5, clock=clock)
        window.observe(0.1)        # slice 0
        clock.now = 6.0
        window.observe(0.1)        # slice 3
        clock.now = 11.0           # slice 5: slice 0 is out, slice 3 alive
        assert window.count() == 1

    def test_slot_reuse_resets_stale_counts(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(window_s=10, slots=5, clock=clock)
        window.observe(0.1)
        clock.now = 10.0  # same ring slot as t=0, one full rotation later
        window.observe(0.2)
        assert window.count() == 1
        assert window.sum() == pytest.approx(0.2)

    def test_quantile_interpolates_within_the_bucket(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(
            window_s=10, slots=5, buckets=(0.1, 0.2, 0.4), clock=clock
        )
        for _ in range(10):
            window.observe(0.15)  # all land in the (0.1, 0.2] bucket
        estimate = window.quantile(0.5)
        assert 0.1 < estimate <= 0.2
        assert window.quantile(0.5) == pytest.approx(0.15)

    def test_quantile_orders_across_buckets(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(
            window_s=10, slots=5, buckets=(0.01, 0.1, 1.0), clock=clock
        )
        for _ in range(90):
            window.observe(0.005)
        for _ in range(10):
            window.observe(0.5)
        assert window.quantile(0.5) <= 0.01
        assert window.quantile(0.99) > 0.1

    def test_overflow_clamps_to_the_highest_edge(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(
            window_s=10, slots=5, buckets=(0.1, 0.2), clock=clock
        )
        window.observe(5.0)
        assert window.quantile(0.99) == 0.2

    def test_quantile_range_is_validated(self):
        with pytest.raises(ValidationError):
            SlidingWindowHistogram().quantile(1.5)

    def test_merged_counts_include_the_overflow_bucket(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(
            window_s=10, slots=5, buckets=(0.1,), clock=clock
        )
        window.observe(0.05)
        window.observe(9.0)
        assert window.merged_counts() == [1, 1]

    def test_snapshot_is_json_safe(self):
        clock = FakeClock()
        window = SlidingWindowHistogram(window_s=10, slots=5, clock=clock)
        window.observe(0.02)
        snapshot = window.snapshot()
        assert snapshot["count"] == 1
        assert set(snapshot["quantiles"]) == {"0.5", "0.95", "0.99"}


class TestWindowedQuantiles:
    def test_sources_are_created_lazily(self):
        family = WindowedQuantiles(clock=FakeClock())
        assert family.sources() == []
        family.observe("repro_solver_solve_seconds", 0.01)
        assert family.sources() == ["repro_solver_solve_seconds"]
        assert family.get("repro_solver_solve_seconds").count() == 1
        assert family.get("unknown") is None

    def test_publish_sets_quantile_and_observation_gauges(self):
        clock = FakeClock()
        family = WindowedQuantiles(window_s=10, slots=5, clock=clock)
        for value in (0.01, 0.02, 0.04):
            family.observe("repro_harness_run_seconds", value)
        registry = MetricsRegistry()
        family.publish(registry)
        rendered = registry.to_prometheus()
        assert (
            'repro_window_latency_observations{source="repro_harness_run_seconds"} 3'
            in rendered
        )
        assert (
            'repro_window_latency_seconds{quantile="0.5"'
            ',source="repro_harness_run_seconds"}'
        ) in rendered

    def test_empty_window_publishes_zero(self):
        clock = FakeClock()
        family = WindowedQuantiles(window_s=10, slots=5, clock=clock)
        family.observe("repro_harness_run_seconds", 0.01)
        clock.now = 100.0  # everything decayed
        registry = MetricsRegistry()
        family.publish(registry)
        rendered = registry.to_prometheus()
        assert (
            'repro_window_latency_seconds{quantile="0.5"'
            ',source="repro_harness_run_seconds"} 0\n'
        ) in rendered


class TestRecorderRouting:
    def test_windowed_histograms_feed_the_quantile_family(self):
        recorder = Recorder()
        recorder.observe("repro_solver_solve_seconds", 0.02, {"algorithm": "X"})
        assert recorder.windows.sources() == ["repro_solver_solve_seconds"]
        # the lifetime histogram records it too
        rendered = recorder.metrics.to_prometheus()
        assert "repro_solver_solve_seconds_count" in rendered

    def test_non_windowed_histograms_do_not(self):
        recorder = Recorder()
        recorder.observe("repro_store_snapshot_seconds", 0.02)
        assert recorder.windows.sources() == []

    def test_every_windowed_name_is_a_declared_histogram(self):
        from repro.obs.schema import DECLARED_METRICS

        declared_histograms = {
            name for kind, name, _, _ in DECLARED_METRICS if kind == "histogram"
        }
        assert WINDOWED_HISTOGRAMS <= declared_histograms

    def test_exposition_carries_window_gauges(self):
        recorder = Recorder()
        recorder.observe("repro_harness_run_seconds", 0.01)
        rendered = recorder.export_prometheus()
        assert 'repro_window_latency_seconds{source="repro_harness_run_seconds"' in rendered
        snapshot = recorder.export_json()
        assert "repro_harness_run_seconds" in snapshot["window_quantiles"]
        assert snapshot["events"]["total"] == 0
