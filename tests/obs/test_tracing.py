"""Tracing spans: ambient parenting, timing, errors, JSONL export."""

import json

import pytest

from repro.obs import Tracer, current_span


class TestParenting:
    def test_nested_spans_pick_up_ambient_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as first:
                pass
            with tracer.span("b") as second:
                pass
        assert first.parent_id == second.parent_id == outer.span_id
        assert first.span_id != second.span_id

    def test_children_finish_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.finished] == ["inner", "outer"]


class TestSpanRecords:
    def test_span_measures_wall_and_cpu_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10_000))
        (span,) = tracer.finished
        assert span.elapsed_s >= 0.0
        assert span.cpu_s >= 0.0
        assert span.status == "ok"

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("solve", algorithm="ILP") as span:
            span.set(pivots=12)
        assert span.attributes == {"algorithm": "ILP", "pivots": 12}

    def test_exception_marks_span_as_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("fragile"):
                raise RuntimeError("boom")
        (span,) = tracer.finished
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        # the contextvar must be restored even on the error path
        assert current_span() is None

    def test_spans_named_filters(self):
        tracer = Tracer()
        with tracer.span("solve"):
            pass
        with tracer.span("load"):
            pass
        assert [s.name for s in tracer.spans_named("solve")] == ["solve"]


class TestExport:
    def test_jsonl_is_one_valid_object_per_span(self):
        tracer = Tracer()
        with tracer.span("outer", m=3):
            with tracer.span("inner"):
                pass
        lines = tracer.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"m": 3}
        assert all(record["start_s"] >= 0.0 for record in records)

    def test_error_field_only_present_on_failures(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        (record,) = tracer.to_dicts()
        assert "error" not in record

    def test_write_jsonl_appends_trailing_newline(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "trace.jsonl"
        with path.open("w") as stream:
            tracer.write_jsonl(stream)
        assert path.read_text().endswith("\n")
