"""The live exposition server: routes, health, scrape accounting.

The smoke test the PR's acceptance hangs on: start on an ephemeral
port, scrape ``/metrics`` and ``/healthz`` over real HTTP, shut down
cleanly.
"""

import json
import urllib.request

import pytest

from repro.common.errors import ValidationError
from repro.obs import (
    ObservabilityServer,
    Recorder,
    SamplingProfiler,
    breaker_health,
    recording,
    stream_health,
)


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as response:
        return response.status, response.read().decode()


def _get_error(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=5) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


class TestSmoke:
    def test_ephemeral_port_scrape_and_clean_shutdown(self):
        recorder = Recorder()
        recorder.count("repro_stream_appends_total", 3)
        server = ObservabilityServer(recorder=recorder, port=0)
        with server:
            assert server.running
            assert server.port not in (None, 0)
            code, body = _get(server, "/metrics")
            assert code == 200
            assert "repro_stream_appends_total 3" in body
            code, body = _get(server, "/healthz")
            assert code == 200
            assert json.loads(body)["status"] == "ok"
        assert not server.running
        # the lifecycle landed in the journal
        kinds = [event.kind for event in recorder.journal.tail()]
        assert kinds == ["serve.start", "serve.stop"]

    def test_port_validation_and_double_start(self):
        with pytest.raises(ValidationError):
            ObservabilityServer(port=-1)
        server = ObservabilityServer(recorder=Recorder(), port=0)
        with server:
            with pytest.raises(ValidationError):
                server.start()
        server.stop()  # second stop is a no-op

    def test_url_requires_a_started_server(self):
        with pytest.raises(ValidationError):
            ObservabilityServer().url


class TestMetricsRoutes:
    def test_metrics_text_carries_window_quantiles(self):
        recorder = Recorder()
        recorder.observe("repro_harness_run_seconds", 0.02)
        with ObservabilityServer(recorder=recorder, port=0) as server:
            _, body = _get(server, "/metrics")
        assert "# TYPE repro_window_latency_seconds gauge" in body
        assert 'source="repro_harness_run_seconds"' in body

    def test_metrics_json_mirror(self):
        recorder = Recorder()
        recorder.event("stream.compaction", live=10)
        with ObservabilityServer(recorder=recorder, port=0) as server:
            _, body = _get(server, "/metrics.json")
        payload = json.loads(body)
        assert "repro_stream_appends_total" in payload["metrics"]
        # the server's own serve.start event joins the journal
        assert payload["events"]["total"] == 2
        assert payload["events"]["by_kind"] == {
            "stream.compaction": 1, "serve.start": 1
        }

    def test_null_recorder_still_answers(self):
        with ObservabilityServer(port=0) as server:  # resolves NULL_RECORDER
            code, body = _get(server, "/metrics")
            assert code == 200
            assert "no live recorder" in body
            _, body = _get(server, "/metrics.json")
            assert json.loads(body)["recorder"] == "null"

    def test_server_follows_the_installed_recorder(self):
        with ObservabilityServer(port=0) as server:
            with recording(Recorder()) as recorder:
                recorder.count("repro_stream_appends_total", 7)
                _, body = _get(server, "/metrics")
        assert "repro_stream_appends_total 7" in body

    def test_scrapes_are_counted(self):
        import time

        recorder = Recorder()
        with ObservabilityServer(recorder=recorder, port=0) as server:
            for _ in range(3):
                _get(server, "/metrics")
        # the handler accounts a scrape *after* writing its response, so
        # wait for the last in-flight increment rather than reading a
        # mid-flight body
        deadline = time.time() + 2.0
        while time.time() < deadline:
            if recorder.metrics.counter_total("repro_serve_requests_total") >= 3:
                break
            time.sleep(0.01)
        body = recorder.metrics.to_prometheus()
        assert (
            'repro_serve_requests_total{path="/metrics",code="200"} 3' in body
        )
        assert "repro_serve_request_seconds_count 3" in body

    def test_unknown_paths_are_404_with_bounded_label(self):
        import time

        recorder = Recorder()
        with ObservabilityServer(recorder=recorder, port=0) as server:
            code, _ = _get_error(server, "/nope/" + "x" * 50)
            assert code == 404
        deadline = time.time() + 2.0
        while time.time() < deadline:
            if recorder.metrics.counter_total("repro_serve_requests_total") >= 1:
                break
            time.sleep(0.01)
        body = recorder.metrics.to_prometheus()
        assert 'repro_serve_requests_total{path="other",code="404"} 1' in body


class TestHealth:
    def test_healthz_degrades_when_a_check_fails(self):
        server = ObservabilityServer(
            recorder=Recorder(),
            port=0,
            health={"always_down": lambda: (False, "broken")},
        )
        with server:
            code, body = _get_error(server, "/healthz")
        assert code == 503
        payload = json.loads(body)
        assert payload["status"] == "degraded"
        assert payload["checks"]["always_down"] == {
            "healthy": False, "detail": "broken"
        }

    def test_raising_probe_reads_as_unhealthy_not_a_500(self):
        def bad_probe():
            raise RuntimeError("probe exploded")

        server = ObservabilityServer(recorder=Recorder(), port=0)
        server.add_health("flaky", bad_probe)
        with server:
            code, body = _get_error(server, "/healthz")
        assert code == 503
        assert "probe raised" in json.loads(body)["checks"]["flaky"]["detail"]

    def test_breaker_health_tracks_the_breaker_state(self):
        from repro.runtime import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        check = breaker_health(breaker)
        ok, detail = check()
        assert ok and "state=closed" in detail
        breaker.record_failure()
        ok, detail = check()
        assert not ok and "state=open" in detail

    def test_stream_health_reports_epoch_and_live_size(self):
        from repro.booldata.schema import Schema
        from repro.stream import StreamingLog

        log = StreamingLog(Schema.anonymous(4), window_size=8)
        log.append(0b0011)
        ok, detail = stream_health(log)()
        assert ok
        assert detail == "epoch=1 live=1"

    def test_stream_health_survives_a_broken_stream(self):
        class Broken:
            def __len__(self):
                raise RuntimeError("gone")

        ok, detail = stream_health(Broken())()
        assert not ok
        assert "unavailable" in detail

    def test_healthz_reports_recorder_mode_and_uptime(self):
        with ObservabilityServer(recorder=Recorder(), port=0) as server:
            _, body = _get(server, "/healthz")
        payload = json.loads(body)
        assert payload["recorder"] == "live"
        assert payload["uptime_s"] >= 0.0


class TestDebugRoutes:
    def test_debug_spans_returns_newest_finished_spans(self):
        recorder = Recorder()
        for i in range(5):
            with recorder.span("solve", attempt=i):
                pass
        with ObservabilityServer(recorder=recorder, port=0) as server:
            _, body = _get(server, "/debug/spans?n=2")
        spans = json.loads(body)["spans"]
        assert len(spans) == 2
        assert [span["attributes"]["attempt"] for span in spans] == [3, 4]

    def test_debug_events_filters_and_reports_drops(self):
        recorder = Recorder(journal_capacity=3)
        recorder.event("harness.retry", level="warning")
        recorder.event("stream.compaction")
        recorder.event("store.checkpoint")
        recorder.event("store.recovery", level="error")
        with ObservabilityServer(recorder=recorder, port=0) as server:
            _, body = _get(server, "/debug/events?kind=store")
            code, _ = _get_error(server, "/debug/events?level=bogus")
        payload = json.loads(body)
        assert [e["kind"] for e in payload["events"]] == [
            "store.checkpoint", "store.recovery"
        ]
        # two drops: four explicit events plus the server's serve.start
        # overflowed the capacity-3 ring twice
        assert payload["dropped"] == 2
        assert code == 400

    def test_debug_profile_404s_without_a_profiler(self):
        with ObservabilityServer(recorder=Recorder(), port=0) as server:
            code, _ = _get_error(server, "/debug/profile")
        assert code == 404

    def test_debug_profile_serves_collapsed_stacks(self):
        import time

        recorder = Recorder()
        recorder.profiler = SamplingProfiler(interval_s=0.001)
        with recorder.profiler:
            with recorder.profiler.phase("solve"):
                end = time.perf_counter() + 0.05
                while time.perf_counter() < end:
                    sum(range(200))
        with ObservabilityServer(recorder=recorder, port=0) as server:
            code, body = _get(server, "/debug/profile?phase=solve")
        assert code == 200
        assert body  # collapsed lines, no phase prefix in filtered form
        assert all(not line.startswith("solve;") for line in body.splitlines())

    def test_debug_routes_empty_without_a_recorder(self):
        with ObservabilityServer(port=0) as server:
            _, spans = _get(server, "/debug/spans")
            _, events = _get(server, "/debug/events")
        assert json.loads(spans) == {"spans": []}
        assert json.loads(events) == {"events": []}
