"""Stopwatch + time_call, including the repro.common.timing re-export."""

from repro.obs import Recorder, Stopwatch, recording, time_call


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch()
        watch.add("io", 0.25)
        watch.add("io", 0.25)
        watch.add("solve", 1.0)
        assert watch.laps["io"] == 0.5
        assert watch.total == 1.5

    def test_lap_context_manager_measures(self):
        watch = Stopwatch()
        with watch.lap("work"):
            sum(range(1000))
        assert watch.laps["work"] >= 0.0

    def test_lap_emits_a_span_when_recording(self):
        watch = Stopwatch()
        with recording(Recorder()) as recorder:
            with watch.lap("load"):
                pass
        assert [s.name for s in recorder.tracer.finished] == ["lap:load"]
        assert "load" in watch.laps

    def test_lap_emits_no_span_when_disabled(self):
        watch = Stopwatch()
        recorder = Recorder()
        with watch.lap("load"):
            pass
        assert list(recorder.tracer.finished) == []


class TestCompatReExport:
    def test_common_timing_is_the_same_object(self):
        from repro.common import timing as compat

        assert compat.Stopwatch is Stopwatch
        assert compat.time_call is time_call

    def test_time_call_returns_result_and_elapsed(self):
        result, elapsed = time_call(sorted, [3, 1, 2])
        assert result == [1, 2, 3]
        assert elapsed >= 0.0
