"""The event journal: bounded, structured, span-correlated."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.obs import EventJournal, Recorder, recording
from repro.obs.events import Event


class TestRecording:
    def test_record_returns_the_event(self):
        journal = EventJournal(clock=lambda: 12.5)
        event = journal.record("breaker.transition", to="open")
        assert isinstance(event, Event)
        assert event.kind == "breaker.transition"
        assert event.ts == 12.5
        assert event.attributes == {"to": "open"}
        assert event.level == "info"

    def test_sequence_numbers_are_monotonic(self):
        journal = EventJournal()
        first = journal.record("a")
        second = journal.record("b")
        assert second.seq == first.seq + 1

    def test_unknown_level_is_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValidationError, match="unknown event level"):
            journal.record("a", level="fatal")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            EventJournal(capacity=0)


class TestRingBound:
    def test_oldest_events_are_overwritten(self):
        journal = EventJournal(capacity=3)
        for i in range(5):
            journal.record(f"kind.{i}")
        assert len(journal) == 3
        assert [e.kind for e in journal.tail()] == ["kind.2", "kind.3", "kind.4"]

    def test_total_and_dropped_account_for_overwrites(self):
        journal = EventJournal(capacity=2)
        for _ in range(7):
            journal.record("tick")
        assert journal.total == 7
        assert journal.dropped == 5
        assert len(journal) == 2

    def test_clear_keeps_the_sequence_counter(self):
        journal = EventJournal(capacity=4)
        journal.record("a")
        journal.clear()
        assert len(journal) == 0
        assert journal.record("b").seq == 2


class TestTailFilters:
    def _journal(self):
        journal = EventJournal()
        journal.record("harness.retry", level="warning")
        journal.record("harness.fallback", level="warning")
        journal.record("stream.compaction")
        journal.record("store.recovery", level="error")
        return journal

    def test_kind_matches_exact_and_dotted_prefix(self):
        journal = self._journal()
        assert len(journal.tail(kind="harness")) == 2
        assert len(journal.tail(kind="harness.retry")) == 1
        assert journal.tail(kind="harness.ret") == []

    def test_level_is_a_minimum_severity(self):
        journal = self._journal()
        assert len(journal.tail(level="warning")) == 3
        assert [e.kind for e in journal.tail(level="error")] == ["store.recovery"]

    def test_count_takes_the_newest(self):
        journal = self._journal()
        assert [e.kind for e in journal.tail(2)] == [
            "stream.compaction", "store.recovery"
        ]

    def test_bad_level_filter_is_rejected(self):
        with pytest.raises(ValidationError):
            self._journal().tail(level="loud")

    def test_counts_by_kind(self):
        assert self._journal().counts_by_kind() == {
            "harness.retry": 1,
            "harness.fallback": 1,
            "stream.compaction": 1,
            "store.recovery": 1,
        }


class TestSpanCorrelation:
    def test_event_inside_a_span_carries_its_ids(self):
        with recording(Recorder()) as recorder:
            with recorder.span("monitor.reoptimize") as span:
                event = recorder.journal.record("harness.retry")
        assert event.span_id == span.span_id
        assert event.span_name == "monitor.reoptimize"

    def test_event_outside_any_span_has_no_ids(self):
        journal = EventJournal()
        event = journal.record("stream.compaction")
        assert event.span_id is None
        assert event.span_name is None


class TestExport:
    def test_to_dict_omits_empty_fields(self):
        journal = EventJournal(clock=lambda: 1.0)
        record = journal.record("a").to_dict()
        assert record == {"seq": 1, "ts": 1.0, "kind": "a", "level": "info"}

    def test_jsonl_round_trip(self):
        journal = EventJournal(clock=lambda: 2.0)
        journal.record("breaker.transition", to="open", failures=3)
        lines = journal.to_jsonl().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "breaker.transition"
        assert record["attributes"] == {"to": "open", "failures": 3}

    def test_dump_writes_the_flight_record(self, tmp_path):
        journal = EventJournal()
        journal.record("store.checkpoint", epoch=4)
        journal.record("store.recovery", level="error")
        target = tmp_path / "flight.jsonl"
        assert journal.dump(target) == 2
        records = [json.loads(line) for line in target.read_text().splitlines()]
        assert [r["kind"] for r in records] == [
            "store.checkpoint", "store.recovery"
        ]


class TestRecorderIntegration:
    def test_recorder_event_counts_by_kind(self):
        recorder = Recorder()
        recorder.event("harness.retry", level="warning", solver="ILP")
        recorder.event("harness.retry", level="warning", solver="ILP")
        assert recorder.metrics.counter_total("repro_obs_events_total") == 2.0
        assert recorder.journal.tail()[-1].attributes == {"solver": "ILP"}

    def test_recorder_counts_dropped_events(self):
        recorder = Recorder(journal_capacity=2)
        for _ in range(5):
            recorder.event("tick")
        assert recorder.metrics.counter_total(
            "repro_obs_events_dropped_total"
        ) == 3.0

    def test_null_recorder_event_is_a_noop(self):
        from repro.obs import NULL_RECORDER

        NULL_RECORDER.event("anything", level="error")  # must not raise
