"""Tiny-scale smoke runs of every benchmark workload.

The recorded suites under ``benchmarks/`` only execute when someone runs
them explicitly (tier-1 collects ``tests/`` alone), so a refactor could
silently break a measurement function and nobody would notice until the
next baseline refresh.  Every workload therefore exposes its sizes as
arguments; here each one runs at toy scale — seconds of wall clock in
total — asserting the result dict carries the keys and invariants
``check_regression.py`` relies on, not any timing bar.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.booldata.kernels import available_kernels

_BENCHMARKS = str(Path(__file__).resolve().parent.parent / "benchmarks")


@pytest.fixture(autouse=True)
def _benchmarks_on_path():
    sys.path.insert(0, _BENCHMARKS)
    try:
        yield
    finally:
        sys.path.remove(_BENCHMARKS)


def test_kernel_objective_evaluation_smoke():
    import kernel_workload

    result = kernel_workload.measure_objective_evaluation(size=200, candidates=5)
    assert result["checksums_match"]
    for kernel in available_kernels():
        assert result[f"{kernel}_s"] >= 0.0
        if kernel != "python":
            assert result[f"speedup_{kernel}"] > 0.0


def test_kernel_greedy_smoke():
    import kernel_workload

    result = kernel_workload.measure_greedy(size=200)
    assert result["checksums_match"]
    # the checksum packs (satisfied << width) + keep_mask: same selection
    # AND same objective across every kernel
    assert result["objective_checksum"] > 0


def test_kernel_million_row_smoke():
    import kernel_workload

    result = kernel_workload.measure_million_rows(size=500, candidates=3)
    assert result["checksums_match"]
    assert set(result["memory_bytes"]) == set(available_kernels())
    assert all(b > 0 for b in result["memory_bytes"].values())


def test_vertical_workloads_smoke():
    import vertical_workload

    solver = vertical_workload.measure_solver("ConsumeAttrCumul", 200)
    assert solver["objectives_match"]
    assert solver["speedup"] > 0.0
    evaluation = vertical_workload.measure_objective_evaluation(200)
    assert evaluation["values_match"]


def test_runtime_workloads_smoke():
    import runtime_workload

    overhead = runtime_workload.measure_overhead(
        "ConsumeAttrCumul", 300, repeats=1
    )
    assert overhead["bare_s"] >= 0.0
    assert overhead["harness_s"] >= 0.0
    responsiveness = runtime_workload.measure_responsiveness(deadline_ms=80.0)
    assert responsiveness["objective"] is not None
    assert responsiveness["status"] in {"exact", "fallback", "anytime"}


def test_obs_workload_smoke():
    import obs_workload

    result = obs_workload.measure_recording_overhead(
        "smoke", "ConsumeAttrCumul", 300, repeats=1
    )
    assert result["disabled_s"] >= 0.0
    assert result["enabled_s"] >= 0.0


def test_parallel_workloads_smoke():
    import parallel_workload

    inventory = parallel_workload.measure_inventory(size=400)
    assert inventory["visibility_match"]
    counting = parallel_workload.measure_sharded_counting(size=400)
    assert counting["counts_match"]


def test_store_workloads_smoke():
    import store_workload

    append = store_workload.measure_wal_append(appends=50, repeats=1)
    assert append["durable_append_s"] >= 0.0
    assert append["overhead_factor"] > 0.0
    recovery = store_workload.measure_recovery(history=200, tail=20, repeats=1)
    assert recovery["states_match"]
    assert recovery["tail"] == 20
    warm = store_workload.measure_warm_cache(size=100, loops=2, repeats=1)
    assert warm["solutions_match"]
    assert warm["all_hits"]
    assert warm["entries_restored"] >= 1


def test_serve_workloads_smoke():
    import serve_workload

    load = serve_workload.measure_serve_load(
        tenants=6, queries_per_tenant=8, batch_size=4, workers=2
    )
    assert load["answers_match"]
    assert load["gave_up"] == 0
    assert load["pending_after_drain"] == 0
    shed = serve_workload.measure_shedding(
        tenants=6, queries_per_tenant=8, batch_size=4,
        workers=2, queue_depth=1, max_pending=1,
    )
    assert shed["all_tenants_served"]
    assert shed["gave_up"] == 0
    assert shed["pending_after_drain"] == 0


def test_stream_workloads_smoke():
    import stream_workload

    tick = stream_workload.measure_monitor_tick(window=120, ticks=5, repeats=1)
    assert tick["objective_checksum"] is not None
    hit = stream_workload.measure_cache_hit(size=150, loops=3, repeats=1)
    assert hit["solutions_match"]


def test_compete_workloads_smoke():
    import compete_workload

    game = compete_workload.measure_sequential_game(
        width=8, sellers=2, traffic=80, max_rounds=8
    )
    assert game["converged"] or game["cycle"] is not None
    assert game["cooperative_welfare"] >= game["final_welfare"]
    if game["price_of_anarchy"] is not None:
        assert game["price_of_anarchy"] >= 1.0
    equivalence = compete_workload.measure_simultaneous_equivalence(
        width=8, sellers=2, traffic=80, max_rounds=6
    )
    assert equivalence["trajectories_match"]
