"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import bit_count, is_subset
from repro.common.errors import ValidationError
from repro.core import VisibilityProblem, make_solver
from repro.runtime.faults import (
    OK,
    Fault,
    FaultPlan,
    FaultySolver,
    InjectedCrash,
    TransientFault,
    corrupt_solution,
)


@pytest.fixture
def problem() -> VisibilityProblem:
    schema = Schema.anonymous(5)
    log = BooleanTable(schema, [0b00011, 0b00110, 0b01100, 0b00101, 0b00011])
    return VisibilityProblem(log, 0b01111, 2)


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Fault("explode")

    def test_unknown_corruption_rejected(self):
        with pytest.raises(ValidationError):
            Fault("corrupt", corruption="subtle")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            Fault("delay", delay_s=-1)


class TestFaultPlan:
    def test_schedule_consumed_in_order_then_default(self):
        plan = FaultPlan({"ILP": ["error", "ok", "crash"]})
        kinds = [plan.next_fault("ILP").kind for _ in range(5)]
        assert kinds == ["error", "ok", "crash", "ok", "ok"]

    def test_single_step_applies_forever(self):
        plan = FaultPlan({"ILP": "error"})
        assert all(plan.next_fault("ILP").kind == "error" for _ in range(10))

    def test_unscheduled_solver_gets_default(self):
        plan = FaultPlan({"ILP": "error"}, default="crash")
        assert plan.next_fault("ConsumeAttr").kind == "crash"

    def test_history_records_decisions(self):
        plan = FaultPlan({"ILP": ["error"]})
        plan.next_fault("ILP")
        plan.next_fault("Greedy")
        assert plan.history == [("ILP", Fault("error")), ("Greedy", OK)]

    def test_reset_replays_identically(self):
        plan = FaultPlan({"ILP": ["error", "crash"]})
        first = [plan.next_fault("ILP") for _ in range(3)]
        plan.reset()
        assert [plan.next_fault("ILP") for _ in range(3)] == first
        assert len(plan.history) == 3

    def test_seeded_plans_are_deterministic(self):
        names = ["ILP", "ConsumeAttrCumul"]
        a = FaultPlan.seeded(42, names, rate=0.7)
        b = FaultPlan.seeded(42, names, rate=0.7)
        for name in names:
            assert [a.next_fault(name) for _ in range(10)] == [
                b.next_fault(name) for _ in range(10)
            ]

    def test_seeded_rate_zero_is_all_ok(self):
        plan = FaultPlan.seeded(1, ["ILP"], rate=0.0)
        assert all(plan.next_fault("ILP") is OK for _ in range(8))

    def test_seeded_rate_validated(self):
        with pytest.raises(ValidationError):
            FaultPlan.seeded(1, ["ILP"], rate=1.5)


class TestFaultySolver:
    def test_error_raises_transient_fault(self, problem):
        solver = FaultySolver(make_solver("ConsumeAttr"), FaultPlan({"ConsumeAttr": "error"}))
        with pytest.raises(TransientFault):
            solver.solve(problem)

    def test_crash_raises_injected_crash(self, problem):
        solver = FaultySolver(make_solver("ConsumeAttr"), FaultPlan({"ConsumeAttr": "crash"}))
        with pytest.raises(InjectedCrash):
            solver.solve(problem)

    def test_delay_sleeps_then_solves(self, problem):
        pauses = []
        solver = FaultySolver(
            make_solver("ConsumeAttr"),
            FaultPlan({"ConsumeAttr": Fault("delay", delay_s=0.25)}),
            sleep=pauses.append,
        )
        solution = solver.solve(problem)
        assert pauses == [0.25]
        assert solution.satisfied == problem.evaluate(solution.keep_mask)

    def test_ok_passes_through(self, problem):
        inner = make_solver("ConsumeAttr")
        solver = FaultySolver(inner, FaultPlan())
        assert solver.solve(problem).keep_mask == inner.solve(problem).keep_mask

    def test_wrapper_preserves_identity(self):
        inner = make_solver("ILP")
        wrapped = FaultySolver(inner, FaultPlan())
        assert wrapped.name == "ILP"
        assert wrapped.optimal == inner.optimal


class TestCorruptSolution:
    def test_lie_overstates_objective(self, problem):
        honest = make_solver("ConsumeAttr").solve(problem)
        forged = corrupt_solution(honest, "lie")
        assert forged.keep_mask == honest.keep_mask
        assert forged.satisfied != problem.evaluate(forged.keep_mask)

    def test_overbudget_ignores_the_budget(self, problem):
        honest = make_solver("ConsumeAttr").solve(problem)
        forged = corrupt_solution(honest, "overbudget")
        assert bit_count(forged.keep_mask) > problem.budget

    def test_alien_keeps_an_attribute_the_tuple_lacks(self, problem):
        honest = make_solver("ConsumeAttr").solve(problem)
        forged = corrupt_solution(honest, "alien")
        assert not is_subset(forged.keep_mask, problem.new_tuple)

    def test_corruption_bypasses_solution_validators(self, problem):
        # The whole point: a Solution constructed normally would raise.
        honest = make_solver("ConsumeAttr").solve(problem)
        forged = corrupt_solution(honest, "overbudget")
        assert forged.stats == {"forged": True}
