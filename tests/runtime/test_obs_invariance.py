"""Telemetry must observe, never steer.

The tentpole guarantee of :mod:`repro.obs`: installing a recorder
changes *nothing* about what any solver or the harness computes — the
same instances yield bit-identical keep masks with telemetry on and
off.  Each registry solver is exercised on a seeded stream of random
instances twice and the answers are compared, then the same contract is
checked end-to-end through the harness (where the telemetry wrapper
also fills in :class:`repro.runtime.OutcomeStats`).
"""

import random

import pytest

from repro.core import make_solver
from repro.core.registry import SOLVERS
from repro.obs import Recorder, recording
from repro.runtime import OutcomeStats, SolverHarness
from tests.conftest import random_instance

SEED = 20080406


def _instances(count: int, **kwargs):
    rng = random.Random(SEED)
    return [random_instance(rng, **kwargs) for _ in range(count)]


@pytest.mark.parametrize("algorithm", sorted(SOLVERS))
def test_recorder_never_changes_a_solver_answer(algorithm):
    problems = _instances(12, max_width=7, max_queries=15)
    baseline = [make_solver(algorithm).solve(problem) for problem in problems]
    with recording(Recorder()) as recorder:
        observed = [make_solver(algorithm).solve(problem) for problem in problems]
    for quiet, loud in zip(baseline, observed):
        assert loud.keep_mask == quiet.keep_mask
        assert loud.satisfied == quiet.satisfied
        assert loud.algorithm == quiet.algorithm
    # and the solves were actually observed, not skipped
    solves = recorder.metrics.counter_total("repro_solver_solves_total")
    assert solves >= 1  # trivial regimes short-circuit before instrumentation


def test_recorder_never_changes_a_harness_outcome():
    problems = _instances(8, max_width=7, max_queries=15)
    chain = ["MaxFreqItemSets", "ConsumeAttrCumul"]
    quiet = [SolverHarness(chain).run(problem) for problem in problems]
    with recording(Recorder()):
        loud = [SolverHarness(chain).run(problem) for problem in problems]
    for before, after in zip(quiet, loud):
        assert after.status == before.status
        assert after.solution.keep_mask == before.solution.keep_mask
        assert after.solution.satisfied == before.solution.satisfied
        assert [a.solver for a in after.attempts] == [a.solver for a in before.attempts]


@pytest.mark.parametrize("algorithm", sorted(SOLVERS))
def test_journal_windows_and_profiler_never_change_an_answer(algorithm):
    """The full observability stack — event journal, sliding-window
    quantiles, an attached sampling profiler — observes, never steers."""
    from repro.obs import SamplingProfiler

    problems = _instances(10, max_width=7, max_queries=15)
    baseline = [make_solver(algorithm).solve(problem) for problem in problems]
    recorder = Recorder(journal_capacity=8, window_s=5.0, window_slots=4)
    recorder.profiler = SamplingProfiler(interval_s=0.001)
    with recorder.profiler:
        with recording(recorder):
            observed = [
                make_solver(algorithm).solve(problem) for problem in problems
            ]
    for quiet, loud in zip(baseline, observed):
        assert loud.keep_mask == quiet.keep_mask
        assert loud.satisfied == quiet.satisfied
    # the windowed estimator actually saw the solves it is invariant over
    window = recorder.windows.get("repro_solver_solve_seconds")
    if recorder.metrics.counter_total("repro_solver_solves_total"):
        assert window is not None and window.count() >= 1


def test_harness_failures_journal_events_without_changing_outcomes(paper_problem):
    from repro.runtime import FaultPlan

    chain = ["ILP", "MaxFreqItemSets"]
    plan = FaultPlan({"ILP": "error"})

    def run():
        return SolverHarness(
            chain, fault_plan=plan, retries=1, backoff_s=0.0
        ).run(paper_problem)

    quiet = run()
    with recording(Recorder()) as recorder:
        loud = run()
    assert loud.status == quiet.status == "fallback"
    assert loud.solution.keep_mask == quiet.solution.keep_mask
    kinds = {event.kind for event in recorder.journal.tail()}
    assert "harness.retry" in kinds
    assert "harness.failure" in kinds
    assert "harness.fallback" in kinds
    # journal events inherit severities the /debug/events filter can use
    assert all(
        event.level == "warning"
        for event in recorder.journal.tail(kind="harness")
    )


def test_stream_replay_is_invariant_under_full_telemetry():
    """One end-to-end drifting replay, quiet vs fully observed."""
    from repro.stream import ReplayConfig, replay_drift

    config = ReplayConfig(width=8, size=300, window=100, seed=3)
    quiet = replay_drift(config)
    recorder = Recorder()
    with recording(recorder):
        loud = replay_drift(config)
    assert loud.final_mask == quiet.final_mask
    assert loud.hits == quiet.hits
    assert loud.outcomes == quiet.outcomes
    assert loud.epoch == quiet.epoch
    assert loud.compactions == quiet.compactions
    # the tick latency fed the sliding window
    window = recorder.windows.get("repro_stream_append_seconds")
    assert window is not None
    assert recorder.metrics.counter_total("repro_stream_appends_total") == 300


class TestOutcomeStats:
    def test_stats_without_recorder_still_describe_the_run(self, paper_problem):
        outcome = SolverHarness(["MaxFreqItemSets"]).run(paper_problem)
        stats = outcome.stats
        assert isinstance(stats, OutcomeStats)
        assert stats.chain == ("MaxFreqItemSets",)
        assert stats.attempts == 1
        assert stats.retries == 0
        assert stats.fallback_depth == 0
        assert stats.elapsed_ms >= 0.0
        assert stats.counters == {}

    def test_stats_counters_filled_in_when_recording(self, paper_problem):
        with recording(Recorder()):
            outcome = SolverHarness(["MaxFreqItemSets"]).run(paper_problem)
        counters = outcome.stats.counters
        assert counters  # the run's own delta, not the registry's totals
        assert counters['repro_harness_runs_total{status="exact"}'] == 1.0
        assert any(key.startswith("repro_solver_solves_total") for key in counters)

    def test_stats_deltas_are_per_run_not_cumulative(self, paper_problem):
        with recording(Recorder()):
            first = SolverHarness(["ConsumeAttr"]).run(paper_problem)
            second = SolverHarness(["ConsumeAttr"]).run(paper_problem)
        key = 'repro_harness_runs_total{status="exact"}'
        assert first.stats.counters[key] == 1.0
        assert second.stats.counters[key] == 1.0

    def test_fallback_depth_counts_chain_position(self, paper_problem):
        from repro.runtime import FaultPlan

        with recording(Recorder()):
            outcome = SolverHarness(
                ["ILP", "MaxFreqItemSets"],
                fault_plan=FaultPlan({"ILP": "error"}),
                retries=0,
                backoff_s=0.0,
            ).run(paper_problem)
        assert outcome.status == "fallback"
        assert outcome.stats.fallback_depth == 1
        assert outcome.stats.counters["repro_harness_fallbacks_total"] == 1.0

    def test_stats_round_trip_through_to_dict(self, paper_problem):
        outcome = SolverHarness(["ConsumeAttr"]).run(paper_problem)
        record = outcome.to_dict()
        assert record["stats"]["attempts"] == 1
        assert record["stats"]["chain"] == ["ConsumeAttr"]
