"""Tests for the circuit breaker's state machine."""

import pytest

from repro.common.errors import ValidationError
from repro.runtime.breaker import CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def breaker(clock: FakeClock) -> CircuitBreaker:
    return CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)


class TestCircuitBreaker:
    def test_starts_closed(self, breaker):
        assert breaker.state == "closed"
        assert not breaker.is_open()

    def test_trips_at_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open()
        breaker.record_failure()
        assert breaker.is_open()
        assert breaker.state == "open"

    def test_success_resets_the_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.is_open()

    def test_cooldown_half_opens(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 9.9
        assert breaker.is_open()
        clock.now = 10.0
        assert not breaker.is_open()
        assert breaker.state == "half-open"

    def test_half_open_failure_rearms_the_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 15.0
        assert not breaker.is_open()
        breaker.record_failure()  # the trial request failed
        assert breaker.is_open()
        clock.now = 24.9
        assert breaker.is_open()
        clock.now = 25.0
        assert not breaker.is_open()

    def test_half_open_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 20.0
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_validation(self, clock):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(cooldown_s=-1)
