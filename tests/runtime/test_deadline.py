"""Tests for the cooperative deadline primitive."""

import pytest

from repro.common.deadline import (
    NULL_TICKER,
    Deadline,
    Ticker,
    active_deadline,
    active_ticker,
    deadline_scope,
)
from repro.common.errors import (
    DeadlineExceededError,
    SolverInterrupted,
    ValidationError,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_expires_on_schedule(self):
        clock = FakeClock()
        deadline = Deadline(0.05, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.05)
        clock.advance(0.049)
        assert not deadline.expired()
        clock.advance(0.002)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_with_incumbent_and_context(self):
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)
        deadline.check()  # not yet expired: no-op
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check(best_known=0b101, context="unit test")
        assert excinfo.value.best_known == 0b101
        assert "unit test" in str(excinfo.value)

    def test_deadline_error_is_solver_interrupted(self):
        assert issubclass(DeadlineExceededError, SolverInterrupted)

    def test_unbounded_never_expires(self):
        deadline = Deadline.unbounded()
        assert not deadline.bounded
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check()

    def test_after_ms(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(50, clock=clock)
        assert deadline.duration == pytest.approx(0.05)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            Deadline(-1.0)


class TestTicker:
    def test_strided_clock_reads(self):
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)
        ticker = Ticker(deadline, every=4)
        clock.advance(1.0)  # already expired, but ticks 1-3 must not look
        ticker.tick()
        ticker.tick()
        ticker.tick()
        with pytest.raises(DeadlineExceededError) as excinfo:
            ticker.tick(best_known=7)
        assert excinfo.value.best_known == 7

    def test_unbounded_deadline_hands_out_null_ticker(self):
        assert Deadline.unbounded().ticker() is NULL_TICKER
        NULL_TICKER.tick()  # no-op, never raises
        NULL_TICKER.tick(best_known=3)

    def test_stride_must_be_positive(self):
        with pytest.raises(ValidationError):
            Ticker(Deadline(1.0), every=0)


class TestAmbientDeadline:
    def test_no_scope_means_no_deadline(self):
        assert active_deadline() is None
        assert active_ticker() is NULL_TICKER

    def test_scope_sets_and_resets(self):
        deadline = Deadline(1.0)
        with deadline_scope(deadline) as scoped:
            assert scoped is deadline
            assert active_deadline() is deadline
            assert isinstance(active_ticker(), Ticker)
        assert active_deadline() is None

    def test_nested_scopes_restore_outer(self):
        outer, inner = Deadline(1.0), Deadline(2.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer

    def test_scope_resets_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(1.0)):
                raise RuntimeError("boom")
        assert active_deadline() is None

    def test_expired_ambient_deadline_interrupts_a_loop(self):
        clock = FakeClock()
        deadline = Deadline(0.01, clock=clock)
        with deadline_scope(deadline):
            ticker = active_ticker(every=2, context="loop")
            clock.advance(1.0)
            ticker.tick()
            with pytest.raises(DeadlineExceededError):
                ticker.tick()
