"""Tests for the anytime solver harness.

Covers the tentpole contract: a structured outcome is always returned
(never an escaping exception), deadlines bound the wall clock, faults
degrade along the chain, corrupted answers are rejected, and incumbents
from interrupted solvers are served as anytime solutions.
"""

import random
import time

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import bit_count, is_subset
from repro.common.errors import (
    ReproError,
    SolverBudgetExceededError,
    ValidationError,
)
from repro.core import VisibilityProblem, available_algorithms, make_solver
from repro.core.base import Solver
from repro.core.registry import DEFAULT_FALLBACK_CHAIN
from repro.runtime import (
    CircuitBreaker,
    Fault,
    FaultPlan,
    RunOutcome,
    SolverHarness,
    corrupt_solution,
    make_harness,
)
from tests.conftest import random_instance


def small_problem(seed: int = 7, width: int = 6, queries: int = 30) -> VisibilityProblem:
    rng = random.Random(seed)
    schema = Schema.anonymous(width)
    new_tuple = (1 << width) - 1 & ~0b1
    log = BooleanTable(
        schema, [rng.getrandbits(width) & new_tuple or 2 for _ in range(queries)]
    )
    return VisibilityProblem(log, new_tuple, 3)


def hard_problem(seed: int = 3) -> VisibilityProblem:
    """An instance where the pure-Python ILP needs far more than 1 s."""
    rng = random.Random(seed)
    width = 10
    schema = Schema.anonymous(width)
    log = BooleanTable(schema, [rng.getrandbits(width) or 1 for _ in range(200)])
    return VisibilityProblem(log, (1 << width) - 1, 4)


class ScriptedSolver(Solver):
    """Plays back a script: each step is an exception to raise or a
    callable producing the solution; after the script, delegates to the
    greedy reference."""

    optimal = False

    def __init__(self, name: str, steps=()):
        self.name = name
        self._steps = list(steps)
        self.calls = 0

    def solve(self, problem):
        self.calls += 1
        if self._steps:
            step = self._steps.pop(0)
            if isinstance(step, BaseException):
                raise step
            return step(problem)
        return make_solver("ConsumeAttr").solve(problem)

    def _solve(self, problem):  # pragma: no cover - solve is overridden
        raise AssertionError


def valid(outcome: RunOutcome, problem: VisibilityProblem) -> bool:
    solution = outcome.solution
    return (
        solution is not None
        and is_subset(solution.keep_mask, problem.new_tuple)
        and bit_count(solution.keep_mask) <= problem.budget
        and solution.satisfied == problem.evaluate(solution.keep_mask)
    )


class TestBasics:
    def test_default_chain(self):
        assert make_harness().chain == DEFAULT_FALLBACK_CHAIN

    def test_exact_run_matches_primary(self):
        problem = small_problem()
        harness = SolverHarness(["MaxFreqItemSets", "ConsumeAttrCumul"])
        outcome = harness.run(problem)
        direct = make_solver("MaxFreqItemSets").solve(problem)
        assert outcome.status == "exact"
        assert outcome.solution.keep_mask == direct.keep_mask
        assert outcome.solution.satisfied == direct.satisfied
        assert [a.status for a in outcome.attempts] == ["completed"]

    def test_harness_is_a_solver(self):
        problem = small_problem()
        solution = SolverHarness(["ConsumeAttrCumul"]).solve(problem)
        assert solution.satisfied == problem.evaluate(solution.keep_mask)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValidationError):
            SolverHarness([])

    def test_outcome_to_dict_is_json_safe(self):
        import json

        outcome = SolverHarness(["ConsumeAttr"]).run(small_problem())
        json.dumps(outcome.to_dict())

    def test_solve_raises_when_everything_fails(self):
        harness = SolverHarness(
            ["ConsumeAttr"], fault_plan=FaultPlan({}, default="crash")
        )
        with pytest.raises(ReproError, match="fallback chain failed"):
            harness.solve(small_problem())


class TestFallbackEquivalence:
    """Satellite: a run whose primary is fault-injected must be
    bit-identical to running the fallback solver directly."""

    @pytest.mark.parametrize("kind", ["error", "crash"])
    def test_dead_primary_equals_direct_fallback(self, kind):
        rng = random.Random(20080406)
        for _ in range(25):
            problem = random_instance(rng, max_width=7, max_queries=15)
            harness = SolverHarness(
                ["BruteForce", "MaxFreqItemSets"],
                fault_plan=FaultPlan({"BruteForce": kind}),
                retries=0,
                backoff_s=0.0,
            )
            outcome = harness.run(problem)
            direct = make_solver("MaxFreqItemSets").solve(problem)
            assert outcome.status == "fallback"
            assert outcome.solution.keep_mask == direct.keep_mask
            assert outcome.solution.satisfied == direct.satisfied

    def test_corrupted_primary_equals_direct_fallback(self):
        rng = random.Random(5)
        for _ in range(10):
            problem = random_instance(rng, max_width=7, max_queries=15)
            harness = SolverHarness(
                ["ConsumeAttr", "ConsumeAttrCumul"],
                fault_plan=FaultPlan({"ConsumeAttr": "corrupt"}),
            )
            outcome = harness.run(problem)
            direct = make_solver("ConsumeAttrCumul").solve(problem)
            assert outcome.status in ("fallback", "exact")
            if outcome.status == "fallback":
                assert outcome.attempts[0].status == "rejected"
                assert outcome.solution.keep_mask == direct.keep_mask
                assert outcome.solution.satisfied == direct.satisfied


class TestChaosMatrix:
    """Satellite: every registry solver survives every seeded fault
    schedule — the outcome is structured and, when present, valid."""

    @pytest.mark.parametrize("algorithm", available_algorithms())
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_chaos_never_escapes(self, algorithm, seed):
        problem = small_problem(seed=seed, width=5, queries=20)
        chain = [algorithm, "ConsumeAttrCumul"]
        plan = FaultPlan.seeded(seed, chain, rate=0.6, max_delay_s=0.001)
        harness = SolverHarness(
            chain, fault_plan=plan, retries=1, backoff_s=0.0, deadline_ms=2_000
        )
        for _ in range(4):  # march through the fault schedule
            outcome = harness.run(problem)
            assert outcome.status in ("exact", "fallback", "anytime", "failed")
            if outcome.solution is not None:
                assert valid(outcome, problem)
            else:
                assert outcome.status == "failed"


class TestDeadline:
    def test_acceptance_50ms_deadline_where_ilp_needs_seconds(self):
        problem = hard_problem()
        harness = SolverHarness(deadline_ms=50)
        started = time.perf_counter()
        outcome = harness.run(problem)
        elapsed = time.perf_counter() - started
        # ~2x the deadline by design (one grace window); generous bound
        # so CI jitter cannot flake the test.
        assert elapsed < 1.0
        assert outcome.status in ("fallback", "anytime")
        assert valid(outcome, problem)
        assert outcome.attempts[0].solver == "ILP"
        assert outcome.attempts[0].status == "interrupted"

    def test_run_deadline_override(self):
        problem = hard_problem()
        harness = SolverHarness()  # unbounded by default
        outcome = harness.run(problem, deadline_ms=50)
        assert outcome.deadline_s == pytest.approx(0.05)
        assert valid(outcome, problem)

    def test_terminal_grace_window_is_flagged(self):
        problem = hard_problem()
        outcome = SolverHarness(deadline_ms=50).run(problem)
        terminal = outcome.attempts[-1]
        if terminal.status == "completed":
            assert terminal.detail == "grace window"

    def test_unbounded_run_never_interrupts(self):
        outcome = SolverHarness(["ConsumeAttrCumul"]).run(small_problem())
        assert outcome.deadline_s is None
        assert outcome.status == "exact"


class TestAnytime:
    def test_interrupted_incumbent_is_served(self):
        problem = small_problem()
        incumbent = problem.pad_to_budget(0)
        primary = ScriptedSolver(
            "Fragile", [SolverBudgetExceededError("stopped", best_known=incumbent)]
        )
        outcome = SolverHarness([primary]).run(problem)
        assert outcome.status == "anytime"
        assert outcome.solution.keep_mask == incumbent
        assert outcome.solution.satisfied == problem.evaluate(incumbent)
        assert outcome.solution.stats["anytime"] is True

    def test_best_incumbent_wins(self):
        problem = small_problem()
        masks = sorted(
            {problem.pad_to_budget(0), problem.pad_to_budget(0b100)},
            key=problem.evaluate,
        )
        solvers = [
            ScriptedSolver(f"S{i}", [SolverBudgetExceededError("x", best_known=mask)])
            for i, mask in enumerate(masks)
        ]
        outcome = SolverHarness(solvers).run(problem)
        assert outcome.status == "anytime"
        assert outcome.solution.satisfied == max(
            problem.evaluate(mask) for mask in masks
        )

    def test_invalid_incumbent_is_discarded(self):
        problem = small_problem()
        bogus = problem.new_tuple  # exceeds the budget
        primary = ScriptedSolver(
            "Liar", [SolverBudgetExceededError("stopped", best_known=bogus)]
        )
        outcome = SolverHarness([primary]).run(problem)
        assert outcome.status == "failed"
        assert outcome.solution is None


class TestGuard:
    @pytest.mark.parametrize("mode", ["lie", "overbudget", "alien"])
    def test_corrupted_solutions_are_rejected(self, mode):
        problem = small_problem()
        honest = make_solver("ConsumeAttr").solve(problem)
        forged = corrupt_solution(honest, mode)
        primary = ScriptedSolver("Corrupt", [lambda _p: forged])
        outcome = SolverHarness([primary, "ConsumeAttrCumul"]).run(problem)
        assert outcome.attempts[0].status == "rejected"
        assert outcome.status == "fallback"
        assert valid(outcome, problem)

    def test_non_solution_return_is_rejected(self):
        problem = small_problem()
        primary = ScriptedSolver("Weird", [lambda _p: {"keep": 3}])
        outcome = SolverHarness([primary, "ConsumeAttr"]).run(problem)
        assert outcome.attempts[0].status == "rejected"
        assert "not a Solution" in outcome.attempts[0].error


class TestRetries:
    def test_transient_fault_is_retried(self):
        problem = small_problem()
        pauses = []
        harness = SolverHarness(
            ["ConsumeAttr"],
            fault_plan=FaultPlan({"ConsumeAttr": ["error", "ok"]}),
            retries=1,
            backoff_s=0.01,
            sleep=pauses.append,
        )
        outcome = harness.run(problem)
        assert outcome.status == "exact"
        assert outcome.attempts[0].retries == 1
        assert len(pauses) == 1 and pauses[0] > 0

    def test_retry_budget_exhausts(self):
        problem = small_problem()
        harness = SolverHarness(
            ["ConsumeAttr"],
            fault_plan=FaultPlan({"ConsumeAttr": "error"}),
            retries=2,
            backoff_s=0.0,
        )
        outcome = harness.run(problem)
        assert outcome.status == "failed"
        assert outcome.attempts[0].retries == 2

    def test_crashes_are_not_retried(self):
        problem = small_problem()
        harness = SolverHarness(
            ["ConsumeAttr", "ConsumeAttrCumul"],
            fault_plan=FaultPlan({"ConsumeAttr": "crash"}),
            retries=3,
        )
        outcome = harness.run(problem)
        assert outcome.attempts[0].retries == 0
        assert outcome.status == "fallback"

    def test_backoff_is_seeded_and_deterministic(self):
        problem = small_problem()

        def run_once():
            pauses = []
            SolverHarness(
                ["ConsumeAttr"],
                fault_plan=FaultPlan({"ConsumeAttr": ["error", "error", "ok"]}),
                retries=2,
                backoff_s=0.01,
                seed=99,
                sleep=pauses.append,
            ).run(problem)
            return pauses

        assert run_once() == run_once()


class TestCircuitBreaker:
    def make(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0, clock=clock)
        harness = SolverHarness(
            ["ILP", "ConsumeAttrCumul"],
            fault_plan=FaultPlan({"ILP": "crash"}),
            breaker=breaker,
        )
        return breaker, harness

    def test_open_breaker_skips_to_terminal(self):
        clock = lambda: 0.0
        breaker, harness = self.make(clock)
        problem = small_problem()
        harness.run(problem)
        harness.run(problem)
        assert breaker.is_open()
        outcome = harness.run(problem)
        assert outcome.attempts[0].status == "skipped"
        assert outcome.attempts[0].detail == "circuit open"
        assert outcome.status == "fallback"
        assert valid(outcome, problem)

    def test_half_open_trial_recovers(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0, clock=lambda: now[0])
        harness = SolverHarness(
            ["ConsumeAttr", "ConsumeAttrCumul"],
            fault_plan=FaultPlan({"ConsumeAttr": ["crash", "crash"]}),
            breaker=breaker,
        )
        problem = small_problem()
        harness.run(problem)
        harness.run(problem)
        assert breaker.is_open()
        now[0] = 11.0  # cooldown over; the fault schedule is exhausted
        outcome = harness.run(problem)
        assert outcome.status == "exact"
        assert breaker.state == "closed"


class TestIncumbentPropagation:
    """Satellite: interruption errors carry usable ``best_known``."""

    def test_itemsets_budget_error_carries_incumbent(self):
        problem = hard_problem()
        solver = make_solver("MaxFreqItemSets", max_candidates=1)
        with pytest.raises(SolverBudgetExceededError) as excinfo:
            solver.solve(problem)
        mask = excinfo.value.best_known
        assert isinstance(mask, int)
        assert is_subset(mask, problem.new_tuple)
        assert bit_count(mask) <= problem.budget

    def test_brute_force_budget_error_carries_incumbent(self):
        problem = hard_problem()
        solver = make_solver("BruteForce", max_subsets=1)
        with pytest.raises(SolverBudgetExceededError) as excinfo:
            solver.solve(problem)
        mask = excinfo.value.best_known
        assert isinstance(mask, int)
        assert is_subset(mask, problem.new_tuple)
