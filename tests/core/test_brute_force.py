"""Tests specific to the brute-force solver."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import SolverBudgetExceededError
from repro.core import BruteForceSolver, VisibilityProblem


class TestPruning:
    def test_pruning_does_not_change_answer(self, paper_problem):
        pruned = BruteForceSolver(prune_irrelevant=True).solve(paper_problem)
        unpruned = BruteForceSolver(prune_irrelevant=False).solve(paper_problem)
        assert pruned.satisfied == unpruned.satisfied == 3

    def test_pruned_pool_smaller(self, paper_problem):
        pruned = BruteForceSolver(prune_irrelevant=True).solve(paper_problem)
        # t has 5 attributes but only 4 are relevant (auto_trans only
        # appears in the unsatisfiable turbo query)
        assert pruned.stats["pruned_pool_size"] == 4

    def test_result_padded_to_budget(self, paper_log, paper_tuple):
        # budget 4 > relevant pool needs only 3 for the optimum
        problem = VisibilityProblem(paper_log, paper_tuple, 4)
        solution = BruteForceSolver().solve(problem)
        assert solution.keep_mask.bit_count() == 4


class TestBudgetGuard:
    def test_subset_explosion_guarded(self):
        schema = Schema.anonymous(40)
        log = BooleanTable(schema, [1])
        problem = VisibilityProblem(log, schema.full, 20)
        with pytest.raises(SolverBudgetExceededError):
            BruteForceSolver(prune_irrelevant=False, max_subsets=1000).solve(problem)

    def test_enumeration_count_reported(self, paper_problem):
        solution = BruteForceSolver().solve(paper_problem)
        assert solution.stats["subsets_enumerated"] == 4  # C(4,3)


class TestOptimalFlag:
    def test_marked_optimal(self, paper_problem):
        assert BruteForceSolver().solve(paper_problem).optimal
