"""Tests for weighted query logs (deduplication + multiplicities)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import BruteForceSolver, VisibilityProblem
from repro.core.weighted import (
    WeightedVisibilityProblem,
    deduplicated_problem,
    solve_weighted_brute_force,
    solve_weighted_consume_attr,
    solve_weighted_itemsets,
)
from repro.mining.weighted import WeightedTransactionDatabase, deduplicate_rows


class TestDeduplicateRows:
    def test_counts_and_order(self):
        rows, weights = deduplicate_rows([3, 1, 3, 3, 1, 7])
        assert rows == [3, 1, 7]
        assert weights == [3, 2, 1]

    def test_empty(self):
        assert deduplicate_rows([]) == ([], [])


class TestWeightedTransactions:
    def test_support_is_weight_sum(self):
        db = WeightedTransactionDatabase(3, [0b011, 0b001], [5, 2])
        assert db.support(0b001) == 7
        assert db.support(0b010) == 5
        assert db.support(0b100) == 0
        assert db.num_transactions == 7

    def test_matches_expanded_database(self):
        from repro.mining import TransactionDatabase

        rng = random.Random(0)
        rows = [rng.getrandbits(4) for _ in range(8)]
        weights = [rng.randint(1, 4) for _ in range(8)]
        weighted = WeightedTransactionDatabase(4, rows, weights)
        expanded = TransactionDatabase(
            4, [row for row, w in zip(rows, weights) for _ in range(w)]
        )
        for itemset in range(16):
            assert weighted.support(itemset) == expanded.support(itemset)
            assert weighted.complement().support(itemset) == expanded.complement().support(itemset)

    def test_validation(self):
        with pytest.raises(ValidationError):
            WeightedTransactionDatabase(2, [1], [0])  # zero weight
        with pytest.raises(ValidationError):
            WeightedTransactionDatabase(2, [1], [1, 2])  # length mismatch
        with pytest.raises(ValidationError):
            WeightedTransactionDatabase(2, [4], [1])  # out of range

    def test_weighted_mining_matches_expanded(self):
        from repro.mining import TransactionDatabase, mine_maximal_dfs

        rng = random.Random(1)
        rows = [rng.getrandbits(5) or 1 for _ in range(6)]
        weights = [rng.randint(1, 3) for _ in range(6)]
        weighted = WeightedTransactionDatabase(5, rows, weights)
        expanded = TransactionDatabase(
            5, [row for row, w in zip(rows, weights) for _ in range(w)]
        )
        for threshold in (1, 2, 4):
            assert mine_maximal_dfs(weighted, threshold) == mine_maximal_dfs(
                expanded, threshold
            )


class TestWeightedProblem:
    def test_validation(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            WeightedVisibilityProblem(paper_log, (1,) * 4, paper_tuple, 2)  # wrong len
        with pytest.raises(ValidationError):
            WeightedVisibilityProblem(paper_log, (1, 1, 1, 1, 0), paper_tuple, 2)

    def test_evaluate_sums_weights(self, paper_log, paper_schema, paper_tuple):
        problem = WeightedVisibilityProblem(
            paper_log, (10, 1, 1, 1, 1), paper_tuple, 3
        )
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        assert problem.evaluate(keep) == 12  # q1 (10) + q2 + q3

    def test_weights_change_the_optimum(self, paper_log, paper_schema, paper_tuple):
        """Weighting q4 heavily pulls power_brakes into the solution."""
        plain = solve_weighted_brute_force(
            WeightedVisibilityProblem(paper_log, (1,) * 5, paper_tuple, 2)
        )
        skewed = solve_weighted_brute_force(
            WeightedVisibilityProblem(paper_log, (1, 1, 1, 50, 1), paper_tuple, 2)
        )
        brakes = paper_schema.mask_of(["power_brakes"])
        assert skewed.keep_mask & brakes
        assert skewed.satisfied_weight >= 50

    def test_expand_equivalence(self, paper_log, paper_tuple):
        weighted = WeightedVisibilityProblem(paper_log, (2, 1, 3, 1, 1), paper_tuple, 3)
        expanded = weighted.expand()
        best_weighted = solve_weighted_brute_force(weighted)
        best_plain = BruteForceSolver().solve(expanded)
        assert best_weighted.satisfied_weight == best_plain.satisfied

    def test_deduplicated_problem(self, paper_schema):
        rows = [0b000011, 0b000011, 0b000100]
        log = BooleanTable(paper_schema, rows)
        problem = VisibilityProblem(log, paper_schema.full, 2)
        weighted = deduplicated_problem(problem)
        assert len(weighted.log) == 2
        assert weighted.weights == (2, 1)
        assert weighted.total_weight == 3


class TestWeightedSolvers:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_weighted_itemsets_matches_brute_force(self, data):
        width = data.draw(st.integers(2, 6))
        schema = Schema.anonymous(width)
        count = data.draw(st.integers(1, 10))
        rows = [data.draw(st.integers(1, (1 << width) - 1)) for _ in range(count)]
        weights = tuple(data.draw(st.integers(1, 5)) for _ in range(count))
        log = BooleanTable(schema, rows)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        budget = data.draw(st.integers(0, width))
        problem = WeightedVisibilityProblem(log, weights, new_tuple, budget)
        exact = solve_weighted_brute_force(problem)
        itemsets = solve_weighted_itemsets(problem)
        assert itemsets.satisfied_weight == exact.satisfied_weight

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_weighted_equals_expanded(self, data):
        width = data.draw(st.integers(2, 5))
        schema = Schema.anonymous(width)
        count = data.draw(st.integers(1, 8))
        rows = [data.draw(st.integers(1, (1 << width) - 1)) for _ in range(count)]
        weights = tuple(data.draw(st.integers(1, 4)) for _ in range(count))
        log = BooleanTable(schema, rows)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        budget = data.draw(st.integers(0, width))
        problem = WeightedVisibilityProblem(log, weights, new_tuple, budget)
        weighted_opt = solve_weighted_brute_force(problem).satisfied_weight
        plain_opt = BruteForceSolver().solve(problem.expand()).satisfied
        assert weighted_opt == plain_opt

    def test_greedy_bounded_by_optimum(self, paper_log, paper_tuple):
        problem = WeightedVisibilityProblem(paper_log, (3, 1, 4, 1, 5), paper_tuple, 3)
        greedy = solve_weighted_consume_attr(problem)
        exact = solve_weighted_brute_force(problem)
        assert greedy.satisfied_weight <= exact.satisfied_weight
        assert greedy.keep_mask & ~paper_tuple == 0

    def test_dedup_preserves_optimum_on_redundant_logs(self):
        rng = random.Random(3)
        schema = Schema.anonymous(6)
        base_queries = [rng.getrandbits(6) or 1 for _ in range(4)]
        rows = [rng.choice(base_queries) for _ in range(40)]  # heavy repetition
        log = BooleanTable(schema, rows)
        problem = VisibilityProblem(log, schema.full, 3)
        plain = BruteForceSolver().solve(problem)
        weighted = solve_weighted_itemsets(deduplicated_problem(problem))
        assert weighted.satisfied_weight == plain.satisfied

    def test_trivial_budgets(self, paper_log, paper_tuple):
        full = WeightedVisibilityProblem(paper_log, (1,) * 5, paper_tuple, 6)
        assert solve_weighted_itemsets(full).keep_mask == paper_tuple
        zero = WeightedVisibilityProblem(paper_log, (1,) * 5, paper_tuple, 0)
        assert solve_weighted_itemsets(zero).keep_mask == 0


class TestWeightedGreedyEquivalence:
    def test_weighted_consume_attr_equals_expanded_plain_greedy(self):
        """Weighted frequencies equal expanded-log frequencies, and the
        tie-breaks are identical, so the two greedies must pick the same
        attributes."""
        import random as _random

        from repro.core import ConsumeAttrSolver

        rng = _random.Random(12)
        for _ in range(20):
            width = rng.randint(2, 6)
            schema = Schema.anonymous(width)
            count = rng.randint(1, 8)
            rows = [rng.getrandbits(width) or 1 for _ in range(count)]
            weights = tuple(rng.randint(1, 4) for _ in range(count))
            log = BooleanTable(schema, rows)
            new_tuple = rng.getrandbits(width)
            budget = rng.randint(0, width)
            weighted = WeightedVisibilityProblem(log, weights, new_tuple, budget)
            weighted_pick = solve_weighted_consume_attr(weighted)
            plain_pick = ConsumeAttrSolver().solve(weighted.expand())
            assert weighted_pick.keep_mask == plain_pick.keep_mask
            assert weighted_pick.satisfied_weight == plain_pick.satisfied


class TestWeightedLadderFallback:
    def test_zero_greedy_bound_still_finds_optimum(self):
        """The weighted frequency trap: the weighted greedy scores 0, so
        the threshold seeds at 1 and the miner must still recover the
        true optimum."""
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00111, 0b11000])
        weights = (4, 3)
        problem = WeightedVisibilityProblem(log, weights, 0b11111, 2)
        from repro.core.weighted import solve_weighted_consume_attr

        greedy = solve_weighted_consume_attr(problem)
        result = solve_weighted_itemsets(problem)
        exact = solve_weighted_brute_force(problem)
        assert result.satisfied_weight == exact.satisfied_weight == 3
        assert greedy.satisfied_weight <= result.satisfied_weight
