"""Tests for the algorithm registry."""

import pytest

from repro.common.errors import ValidationError
from repro.core import (
    GREEDY_ALGORITHMS,
    OPTIMAL_ALGORITHMS,
    SOLVERS,
    Solver,
    available_algorithms,
    make_solver,
)


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        for name in (
            "BruteForce",
            "ILP",
            "MaxFreqItemSets",
            "ConsumeAttr",
            "ConsumeAttrCumul",
            "ConsumeQueries",
        ):
            assert name in SOLVERS

    def test_available_matches_solvers(self):
        assert available_algorithms() == list(SOLVERS)

    def test_make_solver_returns_solver(self):
        for name in available_algorithms():
            assert isinstance(make_solver(name), Solver)

    def test_solver_names_match_registry_keys(self):
        for name in available_algorithms():
            assert make_solver(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_solver("Oracle")

    def test_overrides_forwarded(self):
        solver = make_solver("ILP", backend="scipy")
        assert solver.backend == "scipy"

    def test_groupings_are_registered_subsets(self):
        assert set(OPTIMAL_ALGORITHMS) <= set(SOLVERS)
        assert set(GREEDY_ALGORITHMS) <= set(SOLVERS)
        assert not set(OPTIMAL_ALGORITHMS) & set(GREEDY_ALGORITHMS)

    def test_optimal_flags_consistent(self):
        for name in OPTIMAL_ALGORITHMS:
            assert make_solver(name).optimal
        for name in GREEDY_ALGORITHMS:
            assert not make_solver(name).optimal
