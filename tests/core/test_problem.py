"""Tests for VisibilityProblem and Solution."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import Solution, VisibilityProblem


class TestProblemValidation:
    def test_negative_budget_rejected(self, paper_log, paper_tuple):
        with pytest.raises(ValidationError):
            VisibilityProblem(paper_log, paper_tuple, -1)

    def test_tuple_out_of_schema_rejected(self, paper_log):
        with pytest.raises(ValidationError):
            VisibilityProblem(paper_log, 1 << 10, 2)

    def test_width_and_tuple_size(self, paper_problem):
        assert paper_problem.width == 6
        assert paper_problem.tuple_size == 5


class TestDerivedViews:
    def test_satisfiable_queries(self, paper_problem, paper_schema):
        # q5 = {Turbo, Auto Trans} demands turbo, which t lacks
        satisfiable = paper_problem.satisfiable_queries
        assert len(satisfiable) == 4
        turbo = paper_schema.mask_of(["turbo"])
        assert all(query & turbo == 0 for query in satisfiable)

    def test_relevant_attributes_subset_of_tuple(self, paper_problem):
        relevant = paper_problem.relevant_attributes
        assert relevant & ~paper_problem.new_tuple == 0

    def test_relevant_attributes_content(self, paper_problem, paper_schema):
        # auto_trans appears only in the unsatisfiable q5 -> irrelevant
        assert paper_schema.names_of(paper_problem.relevant_attributes) == [
            "ac", "four_door", "power_doors", "power_brakes",
        ]


class TestEvaluate:
    def test_paper_optimum(self, paper_problem, paper_schema):
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        assert paper_problem.evaluate(keep) == 3

    def test_rejects_attributes_outside_tuple(self, paper_problem, paper_schema):
        with pytest.raises(ValidationError):
            paper_problem.evaluate(paper_schema.mask_of(["turbo"]))

    def test_rejects_over_budget(self, paper_problem, paper_schema):
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors", "power_brakes"])
        with pytest.raises(ValidationError):
            paper_problem.evaluate(keep)

    def test_empty_keep_counts_empty_queries(self, paper_schema):
        log = BooleanTable(paper_schema, [0, 0b1])
        problem = VisibilityProblem(log, 0b1, 0)
        assert problem.evaluate(0) == 1


class TestPadToBudget:
    def test_pads_up_to_budget(self, paper_problem):
        padded = paper_problem.pad_to_budget(0)
        assert padded.bit_count() == 3
        assert padded & ~paper_problem.new_tuple == 0

    def test_no_change_when_full(self, paper_problem, paper_schema):
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        assert paper_problem.pad_to_budget(keep) == keep

    def test_budget_beyond_tuple_size_caps_at_tuple(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 100)
        assert problem.pad_to_budget(0) == paper_tuple

    def test_rejects_mask_outside_tuple(self, paper_problem, paper_schema):
        # turbo is not an attribute of the car: padding must not silently
        # legitimize an invalid keep-mask
        with pytest.raises(ValidationError):
            paper_problem.pad_to_budget(paper_schema.mask_of(["turbo"]))

    def test_rejects_mask_outside_schema(self, paper_problem):
        with pytest.raises(ValidationError):
            paper_problem.pad_to_budget(1 << 40)


class TestFromDatabase:
    def test_cbd_constructor(self, paper_database, paper_tuple):
        problem = VisibilityProblem.from_database(paper_database, paper_tuple, 4)
        assert problem.log is paper_database


class TestSolution:
    def test_validation(self, paper_problem, paper_schema):
        with pytest.raises(ValidationError):
            Solution(paper_problem, paper_schema.mask_of(["turbo"]), 0, "x", False)
        over = paper_schema.mask_of(["ac", "four_door", "power_doors", "power_brakes"])
        with pytest.raises(ValidationError):
            Solution(paper_problem, over, 0, "x", False)

    def test_kept_attributes_and_ratio(self, paper_problem, paper_schema):
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        solution = Solution(paper_problem, keep, 3, "test", True)
        assert solution.kept_attributes == ["ac", "four_door", "power_doors"]
        assert solution.per_attribute_ratio == 1.0

    def test_ratio_with_empty_keep(self, paper_problem):
        solution = Solution(paper_problem, 0, 0, "test", True)
        assert solution.per_attribute_ratio == 0.0

    def test_str_mentions_algorithm(self, paper_problem):
        solution = Solution(paper_problem, 0, 0, "MyAlg", False)
        assert "MyAlg" in str(solution)
        assert "heuristic" in str(solution)
