"""Tests for the solution explanation module."""

import pytest

from repro.core import BruteForceSolver, VisibilityProblem
from repro.core.report import explain


@pytest.fixture
def solution(paper_problem):
    return BruteForceSolver().solve(paper_problem)


class TestExplain:
    def test_satisfied_queries_listed(self, solution):
        report = explain(solution)
        assert len(report.satisfied_query_names) == solution.satisfied
        assert ["ac", "four_door"] in report.satisfied_query_names

    def test_contributions_cover_kept_attributes(self, solution):
        report = explain(solution)
        assert {c.name for c in report.contributions} == set(solution.kept_attributes)

    def test_marginal_values(self, solution):
        report = explain(solution)
        by_name = {c.name: c for c in report.contributions}
        # dropping power_doors loses q2, q3 (both need it); dropping ac
        # loses q1, q2; dropping four_door loses q1, q3
        assert by_name["power_doors"].marginal_queries == 2
        assert by_name["ac"].marginal_queries == 2
        assert by_name["four_door"].marginal_queries == 2

    def test_near_misses(self, paper_log, paper_tuple):
        # keep only {ac, four_door}: q2 and q3 are each one attribute short
        problem = VisibilityProblem(paper_log, paper_tuple, 2)
        solution = BruteForceSolver().solve(problem)
        report = explain(solution)
        for _, missing in report.near_misses:
            assert len(missing) == 1

    def test_near_miss_cap(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 2)
        solution = BruteForceSolver().solve(problem)
        report = explain(solution, max_near_misses=1)
        assert len(report.near_misses) <= 1

    def test_text_rendering(self, solution):
        text = explain(solution).to_text()
        assert "advertise: ac, four_door, power_doors" in text
        assert "visibility: 3 of 5 queries" in text
        assert "exact" in text

    def test_empty_solution_renders(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 0)
        solution = BruteForceSolver().solve(problem)
        text = explain(solution).to_text()
        assert "(nothing)" in text
