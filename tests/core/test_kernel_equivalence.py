"""Kernel equivalence at the solver level.

Swapping the bitmap kernel under :class:`VisibilityProblem` is a pure
representation change: every vertical-engine solver must return exactly
the selection (mask, objective, stats) it returns on the pure-Python
reference kernel, on any instance.
"""

import pytest

from repro.booldata import kernels
from repro.core import VisibilityProblem, make_solver
from repro.core.registry import ENGINE_AWARE_ALGORITHMS

from tests.core.test_engine_equivalence import SEEDS, random_instance

FAST = [k for k in kernels.available_kernels() if k != "python"]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kernel", FAST)
@pytest.mark.parametrize("algorithm", ENGINE_AWARE_ALGORITHMS)
def test_kernels_agree_on_random_instances(algorithm, kernel, seed):
    log, new_tuple, budget = random_instance(seed)
    solver = make_solver(algorithm, engine="vertical")
    reference = solver.solve(
        VisibilityProblem(log, new_tuple, budget, kernel="python")
    )
    candidate = solver.solve(
        VisibilityProblem(log, new_tuple, budget, kernel=kernel)
    )
    assert candidate.satisfied == reference.satisfied
    assert candidate.keep_mask == reference.keep_mask
    assert candidate.stats == reference.stats


@pytest.mark.parametrize("kernel", FAST)
def test_evaluate_many_matches_the_reference(kernel):
    log, new_tuple, budget = random_instance(SEEDS[0])
    lowest = new_tuple & -new_tuple
    masks = [0, lowest, new_tuple ^ lowest if budget >= new_tuple.bit_count() - 1 else lowest]
    reference = VisibilityProblem(log, new_tuple, budget, kernel="python")
    expected = reference.evaluate_many(masks)
    candidate = VisibilityProblem(log, new_tuple, budget, kernel=kernel)
    assert candidate.evaluate_many(masks) == expected
    assert candidate.index.kernel == kernel


def test_problem_rejects_unknown_kernels():
    from repro.common.errors import ValidationError

    log, new_tuple, budget = random_instance(SEEDS[0])
    with pytest.raises(ValidationError, match="unknown kernel"):
        VisibilityProblem(log, new_tuple, budget, kernel="simd")
