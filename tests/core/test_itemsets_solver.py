"""Tests specific to the MaxFreqItemSets solver and its preprocessing index."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import (
    BruteForceSolver,
    MaximalItemsetIndex,
    MaxFreqItemsetsSolver,
    VisibilityProblem,
)


class TestConfiguration:
    def test_unknown_miner_rejected(self):
        with pytest.raises(ValidationError):
            MaxFreqItemsetsSolver(miner="quantum")

    def test_unknown_threshold_policy_rejected(self):
        with pytest.raises(ValidationError):
            MaxFreqItemsetsSolver(threshold="magic")

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValidationError):
            MaxFreqItemsetsSolver(threshold=1.5)

    def test_bad_absolute_rejected(self):
        with pytest.raises(ValidationError):
            MaxFreqItemsetsSolver(threshold=0)

    def test_adaptive_is_marked_optimal(self):
        assert MaxFreqItemsetsSolver().optimal
        assert not MaxFreqItemsetsSolver(threshold=0.1).optimal


class TestThresholdPolicies:
    def test_adaptive_finds_optimum(self, paper_problem):
        solution = MaxFreqItemsetsSolver().solve(paper_problem)
        assert solution.satisfied == 3

    def test_adaptive_without_greedy_seed_finds_optimum(self, paper_problem):
        solution = MaxFreqItemsetsSolver(greedy_seed=False).solve(paper_problem)
        assert solution.satisfied == 3
        assert "greedy_seed_bound" not in solution.stats

    def test_greedy_seed_recorded(self, paper_problem):
        solution = MaxFreqItemsetsSolver(greedy_seed=True).solve(paper_problem)
        assert solution.stats["greedy_seed_bound"] >= 1

    def test_fixed_threshold_achievable(self, paper_problem):
        # optimum satisfies 3 of 5 queries = 60% -> threshold 40% reachable
        solution = MaxFreqItemsetsSolver(threshold=0.4).solve(paper_problem)
        assert solution.satisfied == 3

    def test_fixed_threshold_too_high_returns_empty(self, paper_schema):
        # no compression reaches 90% of this log
        log = BooleanTable(
            paper_schema,
            [paper_schema.mask_of(["ac"]), paper_schema.mask_of(["turbo"])] * 3,
        )
        tuple_mask = paper_schema.mask_of(["ac", "turbo", "four_door"])
        problem = VisibilityProblem(log, tuple_mask, 1)
        solution = MaxFreqItemsetsSolver(threshold=0.9).solve(problem)
        assert solution.stats.get("returned_empty")
        assert solution.keep_mask.bit_count() == 1  # still padded to budget

    def test_absolute_threshold(self, paper_problem):
        solution = MaxFreqItemsetsSolver(threshold=2).solve(paper_problem)
        assert solution.satisfied == 3


class TestMiners:
    @pytest.mark.parametrize("miner", ["dfs", "reference", "walk", "bottomup"])
    def test_all_miners_find_paper_optimum(self, miner, paper_problem):
        solver = MaxFreqItemsetsSolver(
            miner=miner, seed=0, walk_iterations=2000, walk_min_iterations=50
        )
        assert solver.solve(paper_problem).satisfied == 3


class TestProjectedVsUnprojected:
    def test_paths_agree(self, paper_problem):
        projected = MaxFreqItemsetsSolver(restrict_to_satisfiable=True)
        unprojected = MaxFreqItemsetsSolver(restrict_to_satisfiable=False)
        assert (
            projected.solve(paper_problem).satisfied
            == unprojected.solve(paper_problem).satisfied
        )

    def test_projected_stats(self, paper_problem):
        solution = MaxFreqItemsetsSolver().solve(paper_problem)
        assert solution.stats["projected_width"] == paper_problem.tuple_size


class TestPreprocessingIndex:
    def test_index_reuse_matches_direct_solve(self, paper_log, paper_schema):
        index = MaximalItemsetIndex(paper_log)
        indexed_solver = MaxFreqItemsetsSolver(index=index)
        direct_solver = MaxFreqItemsetsSolver()
        for bits in ([1, 1, 0, 1, 1, 1], [1, 0, 0, 1, 0, 1], [0, 1, 1, 1, 0, 0]):
            tuple_mask = paper_schema.mask_from_bits(bits)
            for budget in (1, 2, 3):
                problem = VisibilityProblem(paper_log, tuple_mask, budget)
                indexed = indexed_solver.solve(problem)
                direct = direct_solver.solve(problem)
                assert indexed.satisfied == direct.satisfied, (bits, budget)

    def test_index_caches_thresholds(self, paper_log):
        index = MaximalItemsetIndex(paper_log)
        first = index.maximal_itemsets(2)
        second = index.maximal_itemsets(2)
        assert first is second

    def test_precompute_warms_cache(self, paper_log):
        index = MaximalItemsetIndex(paper_log)
        index.precompute([1, 2])
        assert set(index._cache) == {1, 2}

    def test_wrong_log_rejected(self, paper_log, paper_schema, paper_tuple):
        index = MaximalItemsetIndex(paper_log)
        other_log = BooleanTable(paper_schema, list(paper_log))
        solver = MaxFreqItemsetsSolver(index=index)
        with pytest.raises(ValidationError):
            solver.solve(VisibilityProblem(other_log, paper_tuple, 2))

    def test_index_solution_flags_usage(self, paper_log, paper_tuple):
        index = MaximalItemsetIndex(paper_log)
        solver = MaxFreqItemsetsSolver(index=index)
        solution = solver.solve(VisibilityProblem(paper_log, paper_tuple, 3))
        assert solution.stats["used_index"]


class TestAgainstBruteForce:
    def test_matches_brute_force_on_small_random_instances(self):
        import random

        from tests.conftest import random_instance

        rng = random.Random(99)
        brute = BruteForceSolver()
        solver = MaxFreqItemsetsSolver()
        for _ in range(25):
            problem = random_instance(rng)
            assert solver.solve(problem).satisfied == brute.solve(problem).satisfied
