"""Tests for Solver base behavior and solver budget guards."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import SolverBudgetExceededError
from repro.core import (
    ConsumeAttrSolver,
    MaxFreqItemsetsSolver,
    Solver,
    VisibilityProblem,
)


class _RecordingSolver(Solver):
    """Counts how often the non-trivial path runs."""

    name = "Recording"

    def __init__(self) -> None:
        self.calls = 0

    def _solve(self, problem):
        self.calls += 1
        return self.make_solution(problem, 0)


class TestTrivialCaseRouting:
    @pytest.fixture
    def schema(self):
        return Schema.anonymous(4)

    def test_budget_covers_tuple_short_circuits(self, schema):
        solver = _RecordingSolver()
        log = BooleanTable(schema, [0b0001])
        solution = solver.solve(VisibilityProblem(log, 0b0011, 2))
        assert solver.calls == 0
        assert solution.keep_mask == 0b0011
        assert solution.stats["trivial_case"] == "budget>=|t|"

    def test_zero_budget_short_circuits(self, schema):
        solver = _RecordingSolver()
        log = BooleanTable(schema, [0b0001])
        solution = solver.solve(VisibilityProblem(log, 0b0111, 0))
        assert solver.calls == 0
        assert solution.keep_mask == 0

    def test_empty_log_short_circuits(self, schema):
        solver = _RecordingSolver()
        solution = solver.solve(VisibilityProblem(BooleanTable(schema), 0b0111, 2))
        assert solver.calls == 0
        assert solution.keep_mask.bit_count() == 2

    def test_trivial_solutions_marked_optimal(self, schema):
        solver = _RecordingSolver()
        log = BooleanTable(schema, [0b0001])
        assert solver.solve(VisibilityProblem(log, 0b0011, 3)).optimal

    def test_non_trivial_path_runs(self, schema):
        solver = _RecordingSolver()
        log = BooleanTable(schema, [0b0001])
        solver.solve(VisibilityProblem(log, 0b0111, 1))
        assert solver.calls == 1

    def test_repr(self):
        assert "Recording" in repr(_RecordingSolver())


class TestItemsetsSolverGuards:
    def test_level_extraction_budget_guard(self):
        """A pathological instance whose level enumeration would explode
        must raise instead of silently truncating."""
        schema = Schema.anonymous(24)
        # one giant satisfiable query -> one MFI near the top; tiny
        # max_candidates forces the guard
        log = BooleanTable(schema, [0b1] * 3 + [(1 << 24) - 1])
        problem = VisibilityProblem(log, schema.full, 12)
        solver = MaxFreqItemsetsSolver(max_candidates=3)
        with pytest.raises(SolverBudgetExceededError):
            solver.solve(problem)

    def test_unprojected_empty_effective_log(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b1000])  # demands an attribute t lacks
        problem = VisibilityProblem(log, 0b0111, 2)
        solver = MaxFreqItemsetsSolver(restrict_to_satisfiable=False)
        solution = solver.solve(problem)
        assert solution.satisfied == 0

    def test_projected_empty_effective_log(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b1000])
        problem = VisibilityProblem(log, 0b0111, 2)
        solution = MaxFreqItemsetsSolver().solve(problem)
        assert solution.satisfied == 0
        assert solution.stats.get("empty_effective_log")


class TestSolutionSerialization:
    def test_to_dict_round_trip_fields(self, paper_problem):
        solution = ConsumeAttrSolver().solve(paper_problem)
        payload = solution.to_dict()
        assert payload["algorithm"] == "ConsumeAttr"
        assert payload["satisfied"] == solution.satisfied
        assert payload["kept_attributes"] == solution.kept_attributes
        assert payload["budget"] == paper_problem.budget
        assert payload["optimal"] is False

    def test_to_dict_json_safe(self, paper_problem):
        import json

        solution = ConsumeAttrSolver().solve(paper_problem)
        json.dumps(solution.to_dict())  # must not raise
