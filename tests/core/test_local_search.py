"""Tests for the local-search heuristic solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.core import (
    BruteForceSolver,
    ConsumeAttrSolver,
    LocalSearchSolver,
    VisibilityProblem,
    make_solver,
)


class TestBasics:
    def test_registered(self):
        solver = make_solver("LocalSearch", restarts=1)
        assert solver.restarts == 1

    def test_paper_example(self, paper_problem):
        solution = LocalSearchSolver(seed=0).solve(paper_problem)
        assert solution.satisfied == 3  # reaches the optimum here

    def test_deterministic_under_seed(self, paper_problem):
        a = LocalSearchSolver(seed=5).solve(paper_problem)
        b = LocalSearchSolver(seed=5).solve(paper_problem)
        assert a.keep_mask == b.keep_mask

    def test_marked_heuristic(self, paper_problem):
        assert not LocalSearchSolver().solve(paper_problem).optimal

    def test_stats_reported(self, paper_problem):
        solution = LocalSearchSolver(restarts=2).solve(paper_problem)
        assert solution.stats["restarts"] == 2
        assert solution.stats["climb_rounds"] >= 1

    def test_negative_restarts_rejected(self):
        with pytest.raises(ValueError):
            LocalSearchSolver(restarts=-1)


class TestQuality:
    def test_at_least_as_good_as_its_starting_point(self):
        """Hill climbing can only improve on the ConsumeAttr start."""
        rng = random.Random(8)
        for _ in range(15):
            width = rng.randint(3, 8)
            schema = Schema.anonymous(width)
            log = BooleanTable(
                schema, [rng.getrandbits(width) or 1 for _ in range(rng.randint(1, 18))]
            )
            problem = VisibilityProblem(log, rng.getrandbits(width), rng.randint(0, width))
            greedy = ConsumeAttrSolver().solve(problem).satisfied
            local = LocalSearchSolver(seed=1).solve(problem).satisfied
            assert local >= greedy

    def test_escapes_consume_attr_trap_via_restarts(self):
        """The classic frequency trap: a0-a2 are the most frequent
        attributes but appear only in 3-attribute queries, useless at
        m=2, while the pair {a3, a4} completes 3 queries.  ConsumeAttr
        scores 0; 1-swap climbing alone cannot escape the plateau
        (every single swap still scores 0), so the random restarts are
        what recover the optimum."""
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00111] * 4 + [0b11000] * 3)
        problem = VisibilityProblem(log, 0b11111, 2)
        greedy = ConsumeAttrSolver().solve(problem)
        assert greedy.satisfied == 0
        local = LocalSearchSolver(seed=0, restarts=8).solve(problem)
        assert local.satisfied == 3
        assert local.satisfied == BruteForceSolver().solve(problem).satisfied


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_bounded_by_optimum_property(data):
    width = data.draw(st.integers(2, 7))
    schema = Schema.anonymous(width)
    queries = [
        data.draw(st.integers(1, (1 << width) - 1))
        for _ in range(data.draw(st.integers(0, 14)))
    ]
    log = BooleanTable(schema, queries)
    new_tuple = data.draw(st.integers(0, (1 << width) - 1))
    budget = data.draw(st.integers(0, width))
    problem = VisibilityProblem(log, new_tuple, budget)
    local = LocalSearchSolver(seed=3).solve(problem)
    optimum = BruteForceSolver().solve(problem).satisfied
    assert local.satisfied <= optimum
    assert local.keep_mask & ~new_tuple == 0
    assert local.keep_mask.bit_count() <= budget
