"""Engine equivalence: vertical bitmap index vs naive row-major loops.

The vertical engine is a pure representation change — for every
engine-aware solver, deterministic tie-breaking included, it must return
exactly the selection of the naive oracle on any instance.  Randomized
over seeded logs, tuples and budgets (satellite requirement of the
vertical-index PR).
"""

import random

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import random_mask
from repro.core import make_solver
from repro.core.registry import ENGINE_AWARE_ALGORITHMS
from repro.data import synthetic_workload

SEEDS = [11, 23, 47, 101]


def random_instance(seed: int):
    """One seeded instance: random log, tuple and budget."""
    rng = random.Random(seed)
    width = rng.choice([6, 10, 14])
    schema = Schema.anonymous(width)
    if rng.random() < 0.5:
        log = synthetic_workload(schema, rng.randrange(20, 120), seed=seed)
    else:
        # unstructured masks, duplicates and empty queries included
        log = BooleanTable(
            schema,
            [rng.randrange(2**width) & rng.randrange(2**width)
             for _ in range(rng.randrange(10, 80))],
        )
    tuple_size = rng.randrange(2, width + 1)
    new_tuple = random_mask(width, tuple_size, rng)
    budget = rng.randrange(1, tuple_size + 1)
    return log, new_tuple, budget


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("algorithm", ENGINE_AWARE_ALGORITHMS)
def test_engines_agree_on_random_instances(algorithm, seed):
    from repro.core import VisibilityProblem

    log, new_tuple, budget = random_instance(seed)
    naive = make_solver(algorithm, engine="naive").solve(
        VisibilityProblem(log, new_tuple, budget)
    )
    vertical = make_solver(algorithm, engine="vertical").solve(
        VisibilityProblem(log, new_tuple, budget)
    )
    # identical objective — and identical selections: both engines follow
    # the same documented deterministic tie-breaking
    assert vertical.satisfied == naive.satisfied
    assert vertical.keep_mask == naive.keep_mask
    assert vertical.stats == naive.stats


@pytest.mark.parametrize("algorithm", ENGINE_AWARE_ALGORITHMS)
def test_engines_agree_on_paper_example(algorithm, paper_problem):
    naive = make_solver(algorithm, engine="naive").solve(paper_problem)
    vertical = make_solver(algorithm, engine="vertical").solve(paper_problem)
    assert vertical.satisfied == naive.satisfied
    assert vertical.keep_mask == naive.keep_mask


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_evaluate_many_matches_evaluate(seed):
    from repro.core import VisibilityProblem

    log, new_tuple, budget = random_instance(seed)
    rng = random.Random(seed + 1)
    problem = VisibilityProblem(log, new_tuple, budget)
    candidates = []
    for _ in range(25):
        size = rng.randrange(0, budget + 1)
        keep = 0
        for attribute in rng.sample(
            [a for a in range(log.schema.width) if new_tuple >> a & 1],
            min(size, new_tuple.bit_count()),
        ):
            keep |= 1 << attribute
        candidates.append(keep)
    fresh = VisibilityProblem(BooleanTable(log.schema, list(log)), new_tuple, budget)
    naive_values = [fresh.evaluate(keep) for keep in candidates]  # index not built
    assert problem.evaluate_many(candidates) == naive_values
