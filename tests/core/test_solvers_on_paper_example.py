"""Every algorithm reproduces Example 1 of the paper exactly."""

import pytest

from repro.core import SOLVERS, VisibilityProblem, make_solver


@pytest.mark.parametrize("name", list(SOLVERS))
class TestExampleOne:
    def test_m3_optimum_is_three_queries(self, name, paper_problem):
        """'we can satisfy a maximum of three queries (q1, q2 and q3)'"""
        solution = make_solver(name).solve(paper_problem)
        assert solution.satisfied == 3

    def test_m3_attributes_are_the_papers(self, name, paper_problem):
        """'if we retain the attributes AC, Four Door and Power Doors'"""
        solution = make_solver(name).solve(paper_problem)
        assert solution.kept_attributes == ["ac", "four_door", "power_doors"]

    def test_budget_respected(self, name, paper_problem):
        solution = make_solver(name).solve(paper_problem)
        assert solution.keep_mask.bit_count() <= paper_problem.budget

    def test_keeps_only_tuple_attributes(self, name, paper_problem):
        solution = make_solver(name).solve(paper_problem)
        assert solution.keep_mask & ~paper_problem.new_tuple == 0


@pytest.mark.parametrize("name", list(SOLVERS))
class TestTrivialRegimes:
    def test_budget_zero(self, name, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 0)
        solution = make_solver(name).solve(problem)
        assert solution.keep_mask == 0
        assert solution.satisfied == 0  # no empty query in the log

    def test_budget_at_least_tuple_size_keeps_everything(
        self, name, paper_log, paper_tuple
    ):
        problem = VisibilityProblem(paper_log, paper_tuple, 6)
        solution = make_solver(name).solve(problem)
        assert solution.keep_mask == paper_tuple
        assert solution.satisfied == 4  # every query except the turbo one

    def test_empty_log(self, name, paper_schema, paper_tuple):
        from repro.booldata import BooleanTable

        problem = VisibilityProblem(BooleanTable(paper_schema), paper_tuple, 2)
        solution = make_solver(name).solve(problem)
        assert solution.satisfied == 0
        assert solution.keep_mask.bit_count() == 2

    def test_empty_tuple(self, name, paper_log):
        problem = VisibilityProblem(paper_log, 0, 3)
        solution = make_solver(name).solve(problem)
        assert solution.keep_mask == 0
        assert solution.satisfied == 0


@pytest.mark.parametrize("name", list(SOLVERS))
def test_paper_cbd_example(name, paper_database, paper_schema, paper_tuple):
    """Section II.B: with m=4 against the database, t' = {AC, Four Door,
    Power Doors, Power Brakes} dominates four tuples (t1, t4, t5, t6)."""
    problem = VisibilityProblem.from_database(paper_database, paper_tuple, 4)
    solution = make_solver(name).solve(problem)
    assert solution.satisfied == 4
    assert solution.kept_attributes == [
        "ac", "four_door", "power_doors", "power_brakes",
    ]
