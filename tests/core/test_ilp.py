"""Tests specific to the ILP solver and the paper's formulation."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.bits import bit_indices
from repro.common.errors import SolverBudgetExceededError, ValidationError
from repro.core import BruteForceSolver, IlpSolver, VisibilityProblem
from repro.core.ilp import build_soc_model
from repro.lp.branch_and_bound import BranchAndBoundSolver


class TestModelConstruction:
    def test_x_variables_only_for_tuple_attributes(self, paper_problem):
        model, x_vars = build_soc_model(paper_problem)
        present = [i for i, x in enumerate(x_vars) if x is not None]
        assert present == bit_indices(paper_problem.new_tuple)

    def test_budget_constraint_present(self, paper_problem):
        model, _ = build_soc_model(paper_problem)
        names = [c.name for c in model.constraints]
        assert "budget" in names

    def test_restricted_model_has_y_per_satisfiable_query(self, paper_problem):
        model, x_vars = build_soc_model(paper_problem, restrict_to_satisfiable=True)
        x_count = sum(1 for x in x_vars if x is not None)
        y_count = len(model.variables) - x_count
        assert y_count == len(paper_problem.satisfiable_queries)

    def test_paper_literal_model_pins_unsatisfiable_queries(self, paper_problem):
        model, x_vars = build_soc_model(paper_problem, restrict_to_satisfiable=False)
        x_count = sum(1 for x in x_vars if x is not None)
        y_count = len(model.variables) - x_count
        assert y_count == len(paper_problem.log)
        # still optimal
        result = BranchAndBoundSolver().solve_model(model)
        assert result.objective == pytest.approx(3.0)

    def test_continuous_y_reaches_integral_optimum(self, paper_problem):
        """The LP-relaxed y trick: optimum equals the all-integer one."""
        relaxed_model, _ = build_soc_model(paper_problem, integral_y=False)
        integral_model, _ = build_soc_model(paper_problem, integral_y=True)
        relaxed = BranchAndBoundSolver().solve_model(relaxed_model)
        integral = BranchAndBoundSolver().solve_model(integral_model)
        assert relaxed.objective == pytest.approx(integral.objective)


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            IlpSolver(backend="gurobi")

    @pytest.mark.parametrize("backend", ["native", "scipy"])
    def test_backends_agree_with_brute_force(self, backend, paper_problem):
        if backend == "scipy":
            pytest.importorskip("scipy")
        solution = IlpSolver(backend=backend).solve(paper_problem)
        assert solution.satisfied == BruteForceSolver().solve(paper_problem).satisfied

    def test_stats_reported(self, paper_problem):
        solution = IlpSolver(backend="native").solve(paper_problem)
        assert solution.stats["backend"] == "native"
        assert solution.stats["variables"] > 0
        assert solution.stats["constraints"] > 0

    def test_node_budget_surfaces(self):
        schema = Schema.anonymous(12)
        import random

        rng = random.Random(0)
        log = BooleanTable(schema, [rng.getrandbits(12) or 1 for _ in range(40)])
        problem = VisibilityProblem(log, schema.full, 6)
        with pytest.raises(SolverBudgetExceededError):
            IlpSolver(backend="native", max_nodes=0).solve(problem)


class TestIntegralYMode:
    def test_integral_y_same_answer(self, paper_problem):
        default = IlpSolver().solve(paper_problem)
        literal = IlpSolver(integral_y=True).solve(paper_problem)
        assert default.satisfied == literal.satisfied == 3
