"""Tests for the greedy heuristics."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.core import (
    BruteForceSolver,
    ConsumeAttrCumulSolver,
    ConsumeAttrSolver,
    ConsumeQueriesSolver,
    CoverageGreedySolver,
    VisibilityProblem,
)

GREEDIES = [
    ConsumeAttrSolver,
    ConsumeAttrCumulSolver,
    ConsumeQueriesSolver,
    CoverageGreedySolver,
]


class TestConsumeAttr:
    def test_picks_most_frequent_attributes(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b0001, 0b0001, 0b0011, 0b0100])
        problem = VisibilityProblem(log, 0b1111, 2)
        solution = ConsumeAttrSolver().solve(problem)
        # a0 appears 3 times, a1 once, a2 once -> a0 plus tie-break lowest
        assert solution.keep_mask & 0b0001

    def test_counts_only_satisfiable_queries(self, paper_schema):
        # turbo query is unsatisfiable; auto_trans should not be picked
        log = BooleanTable(
            paper_schema,
            [paper_schema.mask_of(["turbo", "auto_trans"])] * 5
            + [paper_schema.mask_of(["ac"])],
        )
        tuple_mask = paper_schema.mask_of(["ac", "auto_trans", "four_door"])
        problem = VisibilityProblem(log, tuple_mask, 1)
        solution = ConsumeAttrSolver().solve(problem)
        assert solution.kept_attributes == ["ac"]
        assert solution.satisfied == 1

    def test_frequencies_in_stats(self, paper_problem):
        solution = ConsumeAttrSolver().solve(paper_problem)
        assert isinstance(solution.stats["frequencies"], dict)


class TestConsumeAttrCumul:
    def test_first_pick_is_most_frequent(self):
        schema = Schema.anonymous(3)
        log = BooleanTable(schema, [0b001, 0b001, 0b010])
        problem = VisibilityProblem(log, 0b111, 1)
        solution = ConsumeAttrCumulSolver().solve(problem)
        assert solution.keep_mask == 0b001

    def test_second_pick_follows_cooccurrence(self):
        schema = Schema.anonymous(3)
        # a0 frequent; a2 co-occurs with a0, a1 never does but is frequent alone
        log = BooleanTable(schema, [0b101, 0b101, 0b001, 0b010, 0b010])
        problem = VisibilityProblem(log, 0b111, 2)
        solution = ConsumeAttrCumulSolver().solve(problem)
        assert solution.keep_mask == 0b101  # a0 then a2, not a1

    def test_zero_cooccurrence_falls_back_to_frequency(self):
        schema = Schema.anonymous(4)
        # a0 most frequent; nothing co-occurs with a0; a3 next most frequent
        log = BooleanTable(schema, [0b0001, 0b0001, 0b1000, 0b1000, 0b0010])
        problem = VisibilityProblem(log, 0b1111, 2)
        solution = ConsumeAttrCumulSolver().solve(problem)
        assert solution.keep_mask == 0b1001


class TestConsumeQueries:
    def test_consumes_cheapest_query_first(self):
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00111, 0b00001, 0b11000])
        problem = VisibilityProblem(log, 0b11111, 3)
        solution = ConsumeQueriesSolver().solve(problem)
        # picks {a0} first (1 attr), then {a3,a4} (2 new) -> satisfies 2
        assert solution.satisfied == 2
        assert solution.stats["queries_consumed"] == 2

    def test_skips_queries_that_overflow_budget(self):
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b01111, 0b10000])
        problem = VisibilityProblem(log, 0b11111, 2)
        solution = ConsumeQueriesSolver().solve(problem)
        # 4-attribute query cannot fit budget 2; 1-attribute one can
        assert solution.satisfied == 1

    def test_never_picks_unsatisfiable_query(self, paper_schema):
        log = BooleanTable(paper_schema, [paper_schema.mask_of(["turbo"])])
        tuple_mask = paper_schema.mask_of(["ac"])
        problem = VisibilityProblem(log, tuple_mask, 1)
        solution = ConsumeQueriesSolver().solve(problem)
        assert solution.satisfied == 0
        assert solution.keep_mask == tuple_mask  # padded

    def test_known_weakness_rare_small_queries(self):
        """The failure mode the paper reports in Fig 7: the smallest query
        may contain unpopular attributes, wasting the budget."""
        schema = Schema.anonymous(6)
        log = BooleanTable(
            schema,
            [0b100000]  # rare 1-attribute query, consumed first
            + [0b000011] * 10,  # popular pair
        )
        problem = VisibilityProblem(log, 0b111111, 2)
        greedy = ConsumeQueriesSolver().solve(problem)
        optimal = BruteForceSolver().solve(problem)
        assert greedy.satisfied == 1
        assert optimal.satisfied == 10


class TestCoverageGreedy:
    def test_completes_most_queries_per_step(self):
        schema = Schema.anonymous(4)
        log = BooleanTable(schema, [0b0001] * 3 + [0b0110] * 2)
        problem = VisibilityProblem(log, 0b1111, 1)
        solution = CoverageGreedySolver().solve(problem)
        assert solution.keep_mask == 0b0001
        assert solution.satisfied == 3

    def test_beats_consume_queries_on_rare_pair_trap(self):
        """A rare pair consumed first wastes ConsumeQueries' budget; the
        coverage greedy's touched-count tie-break steers to the popular
        pair instead."""
        schema = Schema.anonymous(6)
        log = BooleanTable(schema, [0b110000] + [0b000011] * 10)
        problem = VisibilityProblem(log, 0b111111, 2)
        assert CoverageGreedySolver().solve(problem).satisfied == 10
        assert ConsumeQueriesSolver().solve(problem).satisfied == 1


@pytest.mark.parametrize("factory", GREEDIES)
class TestGreedyInvariants:
    def test_never_beats_optimal(self, factory):
        import random

        from tests.conftest import random_instance

        rng = random.Random(5)
        brute = BruteForceSolver()
        for _ in range(20):
            problem = random_instance(rng)
            assert factory().solve(problem).satisfied <= brute.solve(problem).satisfied

    def test_budget_and_subset_invariants(self, factory):
        import random

        from tests.conftest import random_instance

        rng = random.Random(6)
        for _ in range(20):
            problem = random_instance(rng)
            solution = factory().solve(problem)
            assert solution.keep_mask.bit_count() <= problem.budget
            assert solution.keep_mask & ~problem.new_tuple == 0

    def test_marked_heuristic(self, factory, paper_problem):
        assert not factory().solve(paper_problem).optimal
