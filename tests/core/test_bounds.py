"""Tests for LP-relaxation optimality certificates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import BruteForceSolver, ConsumeAttrSolver, VisibilityProblem
from repro.core.bounds import GapCertificate, certify, lp_upper_bound


class TestUpperBound:
    def test_paper_example(self, paper_problem):
        bound = lp_upper_bound(paper_problem)
        assert bound >= 3.0  # the true optimum
        assert bound <= 4.0  # only 4 satisfiable queries exist

    def test_budget_zero(self, paper_log, paper_tuple):
        problem = VisibilityProblem(paper_log, paper_tuple, 0)
        assert lp_upper_bound(problem) == 0.0

    def test_budget_zero_counts_empty_queries(self, paper_schema, paper_tuple):
        log = BooleanTable(paper_schema, [0, 0, 0b1])
        problem = VisibilityProblem(log, paper_tuple, 0)
        assert lp_upper_bound(problem) == 2.0

    def test_nothing_satisfiable(self, paper_schema):
        log = BooleanTable(paper_schema, [paper_schema.mask_of(["turbo"])])
        problem = VisibilityProblem(log, paper_schema.mask_of(["ac"]), 1)
        assert lp_upper_bound(problem) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_bound_dominates_true_optimum(self, data):
        width = data.draw(st.integers(2, 6))
        schema = Schema.anonymous(width)
        queries = [
            data.draw(st.integers(1, (1 << width) - 1))
            for _ in range(data.draw(st.integers(0, 12)))
        ]
        log = BooleanTable(schema, queries)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        budget = data.draw(st.integers(0, width))
        problem = VisibilityProblem(log, new_tuple, budget)
        optimum = BruteForceSolver().solve(problem).satisfied
        assert lp_upper_bound(problem) >= optimum - 1e-7


class TestCertify:
    def test_certifies_solution_object(self, paper_problem):
        solution = ConsumeAttrSolver().solve(paper_problem)
        certificate = certify(paper_problem, solution)
        assert certificate.value == solution.satisfied
        assert certificate.upper_bound >= certificate.value

    def test_certifies_raw_mask(self, paper_problem, paper_schema):
        keep = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        certificate = certify(paper_problem, keep)
        assert certificate.value == 3

    def test_ratio_bounded(self, paper_problem):
        solution = ConsumeAttrSolver().solve(paper_problem)
        certificate = certify(paper_problem, solution)
        assert 0.0 <= certificate.ratio <= 1.0

    def test_provably_optimal_detection(self, paper_problem):
        optimal = BruteForceSolver().solve(paper_problem)
        certificate = certify(paper_problem, optimal)
        # the LP bound here is fractional but floors to the optimum
        if certificate.is_provably_optimal:
            assert certificate.gap == 0
        assert "satisfied" in str(certificate)

    def test_over_budget_mask_rejected(self, paper_problem, paper_schema):
        over = paper_schema.mask_of(
            ["ac", "four_door", "power_doors", "power_brakes"]
        )
        with pytest.raises(ValidationError):
            certify(paper_problem, over)

    def test_zero_bound_ratio(self):
        assert GapCertificate(0, 0.0).ratio == 1.0
        assert GapCertificate(0, 0.0).is_provably_optimal

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_greedy_certificates_are_sound(self, data):
        """value <= optimum <= upper_bound on random instances."""
        width = data.draw(st.integers(2, 6))
        schema = Schema.anonymous(width)
        queries = [
            data.draw(st.integers(1, (1 << width) - 1))
            for _ in range(data.draw(st.integers(1, 10)))
        ]
        log = BooleanTable(schema, queries)
        new_tuple = data.draw(st.integers(0, (1 << width) - 1))
        budget = data.draw(st.integers(1, width))
        problem = VisibilityProblem(log, new_tuple, budget)
        greedy = ConsumeAttrSolver().solve(problem)
        certificate = certify(problem, greedy)
        optimum = BruteForceSolver().solve(problem).satisfied
        assert certificate.value <= optimum <= certificate.upper_bound + 1e-7
