"""The exactness contract, enforced with hypothesis.

Every exact algorithm (BruteForce, ILP on both backends, MaxFreqItemSets
with every miner) must return the same objective on every instance, and
every greedy must stay at or below it.  This is the single most
important invariant in the library.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.core import (
    BruteForceSolver,
    IlpSolver,
    MaxFreqItemsetsSolver,
    VisibilityProblem,
    make_solver,
)
from repro.core.registry import GREEDY_ALGORITHMS


@st.composite
def soc_instance(draw):
    width = draw(st.integers(2, 7))
    num_queries = draw(st.integers(0, 15))
    queries = [
        draw(st.integers(1, (1 << width) - 1)) for _ in range(num_queries)
    ]
    log = BooleanTable(Schema.anonymous(width), queries)
    new_tuple = draw(st.integers(0, (1 << width) - 1))
    budget = draw(st.integers(0, width))
    return VisibilityProblem(log, new_tuple, budget)


@settings(max_examples=50, deadline=None)
@given(soc_instance())
def test_exact_algorithms_agree(problem):
    optimum = BruteForceSolver().solve(problem).satisfied
    assert IlpSolver(backend="native").solve(problem).satisfied == optimum
    assert MaxFreqItemsetsSolver().solve(problem).satisfied == optimum
    assert MaxFreqItemsetsSolver(greedy_seed=False).solve(problem).satisfied == optimum
    assert (
        MaxFreqItemsetsSolver(restrict_to_satisfiable=False).solve(problem).satisfied
        == optimum
    )


@settings(max_examples=25, deadline=None)
@given(soc_instance())
def test_ilp_scipy_backend_agrees(problem):
    pytest.importorskip("scipy")
    optimum = BruteForceSolver().solve(problem).satisfied
    assert IlpSolver(backend="scipy").solve(problem).satisfied == optimum


@settings(max_examples=25, deadline=None)
@given(soc_instance())
def test_walk_miners_agree(problem):
    optimum = BruteForceSolver().solve(problem).satisfied
    for miner in ("walk", "bottomup"):
        solver = MaxFreqItemsetsSolver(
            miner=miner, seed=1234, walk_iterations=3000, walk_min_iterations=80
        )
        assert solver.solve(problem).satisfied == optimum


@settings(max_examples=50, deadline=None)
@given(soc_instance())
def test_greedies_bounded_by_optimum(problem):
    optimum = BruteForceSolver().solve(problem).satisfied
    for name in (*GREEDY_ALGORITHMS, "CoverageGreedy"):
        solution = make_solver(name).solve(problem)
        assert 0 <= solution.satisfied <= optimum


@settings(max_examples=50, deadline=None)
@given(soc_instance())
def test_reported_objective_matches_mask(problem):
    """satisfied must equal an independent recount for every algorithm."""
    from repro.booldata.ops import satisfied_count

    for name in ("BruteForce", "MaxFreqItemSets", "ConsumeAttr", "ConsumeQueries"):
        solution = make_solver(name).solve(problem)
        assert solution.satisfied == satisfied_count(problem.log, solution.keep_mask)


@settings(max_examples=40, deadline=None)
@given(soc_instance(), st.integers(0, 7))
def test_objective_monotone_in_budget(problem, extra):
    """A larger budget can never reduce the optimal visibility."""
    bigger = VisibilityProblem(problem.log, problem.new_tuple, problem.budget + extra)
    solver = MaxFreqItemsetsSolver()
    assert solver.solve(bigger).satisfied >= solver.solve(problem).satisfied
