"""Tests for top-k retrieval and the admission predicate."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.retrieval import AttributeCountScore, ExtrinsicScore, TopKEngine


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(4)


@pytest.fixture
def database(schema) -> BooleanTable:
    return BooleanTable(
        schema,
        [
            0b0001,  # row 0: 1 attribute
            0b0011,  # row 1: 2 attributes
            0b0111,  # row 2: 3 attributes
            0b1111,  # row 3: 4 attributes
            0b0101,  # row 4: 2 attributes
        ],
    )


class TestTopK:
    def test_orders_by_score_descending(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=2)
        top = engine.top_k(0b0001)  # matches rows 0,1,2,3,4... those containing item0
        assert [index for index, _ in top] == [3, 2]

    def test_ties_broken_by_row_order(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=3)
        top = engine.top_k(0b0001)
        # rows 1 and 4 tie at score 2; lower index first
        assert [index for index, _ in top] == [3, 2, 1]

    def test_k_larger_than_matches(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=10)
        assert len(engine.top_k(0b1000)) == 1  # only row 3 has item 3

    def test_k_validation(self, database):
        with pytest.raises(ValidationError):
            TopKEngine(database, AttributeCountScore(), k=0)

    def test_lower_is_better_scoring(self, database):
        prices = [100.0, 50.0, 200.0, 10.0, 75.0]
        scoring = ExtrinsicScore(prices, candidate_value=60.0, higher_is_better=False)
        engine = TopKEngine(database, scoring, k=2)
        top = engine.top_k(0b0001)
        assert [index for index, _ in top] == [3, 1]  # cheapest first


class TestAdmission:
    def test_beating_count(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=2)
        assert engine.beating_count(0b0001, 2.0) == 2  # rows 3 (4) and 2 (3)

    def test_would_retrieve_requires_match(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=5)
        assert not engine.would_retrieve(0b1000, 0b0111)

    def test_optimistic_vs_pessimistic_ties(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=3)
        # candidate with 2 attributes matching query {0}: scores better
        # than row 0; ties with rows 1 and 4; beaten by rows 2 and 3.
        candidate = 0b0011
        assert engine.would_retrieve(0b0001, candidate, "optimistic")
        assert not engine.would_retrieve(0b0001, candidate, "pessimistic")

    def test_unknown_tie_policy_rejected(self, database):
        engine = TopKEngine(database, AttributeCountScore(), k=1)
        with pytest.raises(ValidationError):
            engine.would_retrieve(0b0001, 0b0001, "fifo")

    def test_visibility_of(self, database, schema):
        engine = TopKEngine(database, AttributeCountScore(), k=1)
        log = BooleanTable(schema, [0b0001, 0b1000, 0b0100])
        # full tuple scores 4, ties with row 3 -> optimistic admits
        assert engine.visibility_of(0b1111, log) == 3


class TestExtrinsicScore:
    def test_candidate_value_independent_of_mask(self):
        scoring = ExtrinsicScore([1.0], candidate_value=5.0)
        assert scoring.score_candidate(0) == scoring.score_candidate(0b111) == 5.0

    def test_for_database_length_check(self, database):
        with pytest.raises(ValidationError):
            ExtrinsicScore.for_database(database, [1.0, 2.0], 3.0)

    def test_score_row_reads_column(self):
        scoring = ExtrinsicScore([10.0, 20.0], candidate_value=0.0)
        assert scoring.score_row(1, 0b1) == 20.0


class TestTopKOracleProperty:
    def test_matches_naive_oracle(self):
        """top_k == sort-all-matches-by-(score desc, index asc)[:k]."""
        import random

        from repro.booldata import BooleanTable, Schema

        rng = random.Random(17)
        for _ in range(25):
            width = rng.randint(2, 6)
            schema = Schema.anonymous(width)
            rows = [rng.getrandbits(width) for _ in range(rng.randint(1, 15))]
            table = BooleanTable(schema, rows)
            k = rng.randint(1, 6)
            engine = TopKEngine(table, AttributeCountScore(), k)
            query = rng.getrandbits(width)
            matches = [
                (index, float(row.bit_count()))
                for index, row in enumerate(rows)
                if query & row == query
            ]
            matches.sort(key=lambda pair: (-pair[1], pair[0]))
            assert engine.top_k(query) == matches[:k]
