"""Tests for the text database and BM25 scorer."""

import math

import pytest

from repro.common.errors import ValidationError
from repro.retrieval import Bm25Scorer, TextDatabase, tokenize


class TestTokenize:
    def test_lowercase_and_punctuation(self):
        assert tokenize("Sunny 2-bedroom apt!") == ["sunny", "2", "bedroom", "apt"]

    def test_empty(self):
        assert tokenize("...") == []


@pytest.fixture
def corpus() -> TextDatabase:
    return TextDatabase(
        [
            "sunny apartment near train station",
            "quiet apartment with parking",
            "sunny house with garden and parking parking",
        ]
    )


class TestTextDatabase:
    def test_vocabulary_sorted_unique(self, corpus):
        assert corpus.vocabulary == sorted(set(corpus.vocabulary))
        assert "apartment" in corpus.vocabulary

    def test_document_frequency(self, corpus):
        assert corpus.document_frequency["apartment"] == 2
        assert corpus.document_frequency["parking"] == 2  # per-document, not per-occurrence

    def test_average_length_counts_tokens(self, corpus):
        lengths = [5, 4, 7]
        assert corpus.average_length == pytest.approx(sum(lengths) / 3)

    def test_word_mask_round_trip(self, corpus):
        schema, table = corpus.to_boolean()
        mask = corpus.word_mask(["sunny", "parking"])
        assert set(schema.names_of(mask)) == {"sunny", "parking"}

    def test_word_mask_unknown_word_rejected(self, corpus):
        with pytest.raises(ValidationError):
            corpus.word_mask(["castle"])

    def test_to_boolean_rows_match_bags(self, corpus):
        schema, table = corpus.to_boolean()
        assert set(schema.names_of(table[0])) == {
            "sunny", "apartment", "near", "train", "station",
        }

    def test_query_log_drops_unknown_words_only(self, corpus):
        log = corpus.query_log_to_boolean([["sunny", "castle"], ["parking"]])
        schema, _ = corpus.to_boolean()
        assert schema.names_of(log[0]) == ["sunny"]
        assert schema.names_of(log[1]) == ["parking"]

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError):
            TextDatabase(["..."])


class TestBm25:
    def test_idf_decreases_with_document_frequency(self, corpus):
        scorer = Bm25Scorer(corpus)
        assert scorer.idf("train") > scorer.idf("apartment")

    def test_score_zero_without_matches(self, corpus):
        scorer = Bm25Scorer(corpus)
        assert scorer.score(["garden"], 0) == 0.0

    def test_matching_document_scores_positive(self, corpus):
        scorer = Bm25Scorer(corpus)
        assert scorer.score(["sunny"], 0) > 0.0

    def test_term_frequency_saturation(self, corpus):
        """Doc 2 has 'parking' twice, doc 1 once: higher but not double."""
        scorer = Bm25Scorer(corpus)
        once = scorer.score(["parking"], 1)
        twice = scorer.score(["parking"], 2)
        assert twice > once
        assert twice < 2 * once * 1.5  # saturation bound (loose)

    def test_top_k_ordering(self, corpus):
        scorer = Bm25Scorer(corpus)
        top = scorer.top_k(["sunny", "apartment"], k=3)
        assert top[0][0] == 0  # doc 0 matches both words
        assert len(top) == 3

    def test_top_k_excludes_zero_scores(self, corpus):
        scorer = Bm25Scorer(corpus)
        top = scorer.top_k(["garden"], k=3)
        assert [index for index, _ in top] == [2]

    def test_idf_formula(self, corpus):
        scorer = Bm25Scorer(corpus)
        n, df = 3, 2
        expected = math.log((n - df + 0.5) / (df + 0.5) + 1.0)
        assert scorer.idf("apartment") == pytest.approx(expected)
