"""Tests for the Boolean retrieval engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.retrieval import BooleanRetrievalEngine


@pytest.fixture
def engine(paper_database) -> BooleanRetrievalEngine:
    return BooleanRetrievalEngine(paper_database)


class TestConjunctive:
    def test_paper_queries(self, engine, paper_schema):
        # q3 = {Four Door, Power Doors} retrieves t1, t4, t6 (indices 0, 3, 5)
        q3 = paper_schema.mask_of(["four_door", "power_doors"])
        assert engine.conjunctive_search(q3) == [0, 3, 5]

    def test_empty_query_retrieves_everything(self, engine):
        assert engine.conjunctive_count(0) == len(engine)

    def test_unsatisfiable_query(self, engine, paper_schema):
        query = paper_schema.mask_of(["turbo", "auto_trans"])
        assert engine.conjunctive_search(query) == []

    def test_count_matches_search(self, engine, paper_schema):
        for names in (["ac"], ["ac", "four_door"], ["power_brakes"]):
            query = paper_schema.mask_of(names)
            assert engine.conjunctive_count(query) == len(engine.conjunctive_search(query))

    def test_out_of_schema_query_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.conjunctive_search(1 << 10)

    @given(st.lists(st.integers(0, 255), max_size=20), st.integers(0, 255))
    def test_matches_naive_scan(self, rows, query):
        table = BooleanTable(Schema.anonymous(8), rows)
        engine = BooleanRetrievalEngine(table)
        naive = [i for i, row in enumerate(rows) if query & row == query]
        assert engine.conjunctive_search(query) == naive


class TestDisjunctive:
    def test_basic(self, engine, paper_schema):
        query = paper_schema.mask_of(["turbo"])
        assert engine.disjunctive_search(query) == [1, 6]

    def test_union_semantics(self, engine, paper_schema):
        q = paper_schema.mask_of(["turbo", "auto_trans"])
        expected = sorted(
            set(engine.disjunctive_search(paper_schema.mask_of(["turbo"])))
            | set(engine.disjunctive_search(paper_schema.mask_of(["auto_trans"])))
        )
        assert engine.disjunctive_search(q) == expected

    def test_empty_query_retrieves_nothing(self, engine):
        assert engine.disjunctive_count(0) == 0

    @given(st.lists(st.integers(0, 255), max_size=20), st.integers(0, 255))
    def test_matches_naive_scan(self, rows, query):
        table = BooleanTable(Schema.anonymous(8), rows)
        engine = BooleanRetrievalEngine(table)
        naive = [i for i, row in enumerate(rows) if query & row]
        assert engine.disjunctive_search(query) == naive


class TestVisibility:
    def test_visibility_of_tuple(self, engine, paper_log, paper_schema):
        compressed = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        assert engine.visibility_of(compressed, paper_log) == 3
