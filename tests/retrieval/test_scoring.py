"""Standalone tests for the global scoring functions."""

import pytest

from repro.retrieval import AttributeCountScore, ExtrinsicScore, GlobalScore


class TestGlobalScoreInterface:
    def test_base_methods_abstract(self):
        score = GlobalScore()
        with pytest.raises(NotImplementedError):
            score.score_row(0, 0b1)
        with pytest.raises(NotImplementedError):
            score.score_candidate(0b1)

    def test_default_orientation(self):
        assert GlobalScore.higher_is_better is True


class TestAttributeCountScore:
    def test_row_and_candidate_agree(self):
        score = AttributeCountScore()
        assert score.score_row(0, 0b1011) == 3.0
        assert score.score_candidate(0b1011) == 3.0

    def test_empty_mask(self):
        assert AttributeCountScore().score_candidate(0) == 0.0

    def test_monotone_in_attributes(self):
        score = AttributeCountScore()
        assert score.score_candidate(0b111) > score.score_candidate(0b011)


class TestExtrinsicScore:
    def test_row_index_lookup(self):
        score = ExtrinsicScore([10.0, 25.0, 5.0], candidate_value=12.0)
        assert score.score_row(1, 0b111111) == 25.0  # mask ignored

    def test_candidate_ignores_mask(self):
        score = ExtrinsicScore([1.0], candidate_value=9.0)
        assert score.score_candidate(0) == score.score_candidate(0b1111) == 9.0

    def test_lower_is_better_flag(self):
        score = ExtrinsicScore([1.0], 2.0, higher_is_better=False)
        assert score.higher_is_better is False
