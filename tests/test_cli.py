"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.booldata import save_table_csv, save_table_json
from repro.cli import main


@pytest.fixture
def log_csv(paper_log, tmp_path):
    path = tmp_path / "log.csv"
    save_table_csv(paper_log, path)
    return str(path)


@pytest.fixture
def log_json(paper_log, tmp_path):
    path = tmp_path / "log.json"
    save_table_json(paper_log, path)
    return str(path)


@pytest.fixture
def database_csv(paper_database, tmp_path):
    path = tmp_path / "db.csv"
    save_table_csv(paper_database, path)
    return str(path)


class TestAlgorithmsCommand:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "MaxFreqItemSets" in out
        assert "exact" in out and "greedy" in out


class TestSolveCommand:
    def test_solve_with_named_tuple(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "queries satisfied: 3 of 5" in out
        assert "ac, four_door, power_doors" in out

    def test_solve_json_log(self, capsys, log_json):
        code = main([
            "solve", "--log", log_json,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "ConsumeAttr",
        ])
        assert code == 0
        assert "heuristic" in capsys.readouterr().out

    def test_solve_with_tuple_row_from_database(self, capsys, log_csv, database_csv):
        code = main([
            "solve", "--log", log_csv, "--database", database_csv,
            "--tuple-row", "3", "--budget", "2",
        ])
        assert code == 0

    def test_against_database(self, capsys, log_csv, database_csv):
        code = main([
            "solve", "--log", log_csv, "--database", database_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "4", "--against-database",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows dominated: 4 of 7" in out

    def test_explain_flag(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors",
            "--budget", "3", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "retained attributes:" in out


class TestErrorHandling:
    def test_both_tuple_sources_rejected(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--tuple-row", "0",
            "--budget", "1",
        ])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_tuple_source_rejected(self, capsys, log_csv):
        assert main(["solve", "--log", log_csv, "--budget", "1"]) == 2

    def test_tuple_row_out_of_range(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple-row", "99", "--budget", "1",
        ])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_unsupported_format(self, capsys, tmp_path):
        path = tmp_path / "log.xlsx"
        path.write_text("nope")
        code = main(["solve", "--log", str(path), "--tuple", "a", "--budget", "1"])
        assert code == 2

    def test_against_database_requires_database(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--budget", "1",
            "--against-database",
        ])
        assert code == 2

    def test_schema_mismatch_detected(self, capsys, log_csv, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"attributes": ["x"], "rows": [["x"]]}))
        code = main([
            "solve", "--log", log_csv, "--database", str(other),
            "--tuple-row", "0", "--budget", "1",
        ])
        assert code == 2

    def test_unknown_algorithm(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--budget", "1",
            "--algorithm", "Oracle",
        ])
        assert code == 2


class TestProfileCommand:
    def test_profiles_csv_log(self, capsys, log_csv):
        assert main(["profile", "--log", log_csv]) == 0
        out = capsys.readouterr().out
        assert "queries: 5" in out
        assert "power_doors" in out

    def test_pairs_flag(self, capsys, log_csv):
        assert main(["profile", "--log", log_csv, "--pairs", "0"]) == 0
        assert "co-occurring" not in capsys.readouterr().out

    def test_bad_format(self, capsys, tmp_path):
        path = tmp_path / "log.parquet"
        path.write_text("x")
        assert main(["profile", "--log", str(path)]) == 2


class TestCertifyFlag:
    def test_certificate_printed_for_greedy(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "ConsumeAttr", "--certify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certificate:" in out

    def test_optimal_certified_as_optimal(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--certify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "provably optimal" in out or "of the optimum" in out


class TestAlternativeAlgorithms:
    def test_local_search_via_cli(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "LocalSearch",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LocalSearch" in out
        assert "queries satisfied: 3 of 5" in out
