"""Tests for the ``python -m repro`` command-line interface."""

import json
import random

import pytest

from repro.booldata import BooleanTable, Schema, save_table_csv, save_table_json
from repro.cli import (
    EXIT_ERROR,
    EXIT_INFEASIBLE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_VALIDATION,
    main,
)


@pytest.fixture
def log_csv(paper_log, tmp_path):
    path = tmp_path / "log.csv"
    save_table_csv(paper_log, path)
    return str(path)


@pytest.fixture
def log_json(paper_log, tmp_path):
    path = tmp_path / "log.json"
    save_table_json(paper_log, path)
    return str(path)


@pytest.fixture
def database_csv(paper_database, tmp_path):
    path = tmp_path / "db.csv"
    save_table_csv(paper_database, path)
    return str(path)


class TestAlgorithmsCommand:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "MaxFreqItemSets" in out
        assert "exact" in out and "greedy" in out


class TestSolveCommand:
    def test_solve_with_named_tuple(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "queries satisfied: 3 of 5" in out
        assert "ac, four_door, power_doors" in out

    def test_solve_json_log(self, capsys, log_json):
        code = main([
            "solve", "--log", log_json,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "ConsumeAttr",
        ])
        assert code == 0
        assert "heuristic" in capsys.readouterr().out

    def test_solve_with_tuple_row_from_database(self, capsys, log_csv, database_csv):
        code = main([
            "solve", "--log", log_csv, "--database", database_csv,
            "--tuple-row", "3", "--budget", "2",
        ])
        assert code == 0

    def test_against_database(self, capsys, log_csv, database_csv):
        code = main([
            "solve", "--log", log_csv, "--database", database_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "4", "--against-database",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows dominated: 4 of 7" in out

    def test_explain_flag(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors",
            "--budget", "3", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "retained attributes:" in out


class TestErrorHandling:
    def test_both_tuple_sources_rejected(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--tuple-row", "0",
            "--budget", "1",
        ])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_neither_tuple_source_rejected(self, capsys, log_csv):
        assert main(["solve", "--log", log_csv, "--budget", "1"]) == 2

    def test_tuple_row_out_of_range(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple-row", "99", "--budget", "1",
        ])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_unsupported_format(self, capsys, tmp_path):
        path = tmp_path / "log.xlsx"
        path.write_text("nope")
        code = main(["solve", "--log", str(path), "--tuple", "a", "--budget", "1"])
        assert code == 2

    def test_against_database_requires_database(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--budget", "1",
            "--against-database",
        ])
        assert code == 2

    def test_schema_mismatch_detected(self, capsys, log_csv, tmp_path):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"attributes": ["x"], "rows": [["x"]]}))
        code = main([
            "solve", "--log", log_csv, "--database", str(other),
            "--tuple-row", "0", "--budget", "1",
        ])
        assert code == 2

    def test_unknown_algorithm(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--budget", "1",
            "--algorithm", "Oracle",
        ])
        assert code == 2


class TestInventoryCommand:
    def test_inventory_over_log_rows(self, capsys, log_csv):
        code = main([
            "inventory", "--log", log_csv, "--budget", "2", "--jobs", "1",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "inventory:" in out
        assert "jobs 1" in out

    def test_inventory_with_database_and_row_spec(self, capsys, log_csv,
                                                  database_csv):
        code = main([
            "inventory", "--log", log_csv, "--database", database_csv,
            "--tuple-rows", "0,2-3", "--budget", "2", "--jobs", "1",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "3 listings" in out

    def test_inventory_matches_solve_for_single_listing(self, capsys, log_csv,
                                                        database_csv):
        """The batch path and the single-tuple path agree on the objective."""
        code = main([
            "solve", "--log", log_csv, "--database", database_csv,
            "--tuple-row", "0", "--budget", "2",
        ])
        assert code == EXIT_OK
        solve_out = capsys.readouterr().out
        code = main([
            "inventory", "--log", log_csv, "--database", database_csv,
            "--tuple-rows", "0", "--budget", "2", "--jobs", "1",
        ])
        assert code == EXIT_OK
        inventory_out = capsys.readouterr().out
        (satisfied,) = [
            line.split(":")[1].split("of")[0].strip()
            for line in solve_out.splitlines()
            if line.startswith("queries satisfied")
        ]
        assert f"total visibility: {satisfied}" in inventory_out

    def test_zero_index_threshold_is_exit_2(self, capsys, log_csv):
        """Regression: used to surface as an uncaught ValueError traceback."""
        code = main([
            "inventory", "--log", log_csv, "--budget", "2",
            "--index-threshold", "0", "--jobs", "1",
        ])
        assert code == EXIT_VALIDATION
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_invalid_jobs_is_exit_2(self, log_csv):
        assert main([
            "inventory", "--log", log_csv, "--budget", "2", "--jobs", "0",
        ]) == EXIT_VALIDATION

    def test_bad_row_spec_is_exit_2(self, log_csv):
        assert main([
            "inventory", "--log", log_csv, "--budget", "2", "--jobs", "1",
            "--tuple-rows", "0,99-101",
        ]) == EXIT_VALIDATION
        assert main([
            "inventory", "--log", log_csv, "--budget", "2", "--jobs", "1",
            "--tuple-rows", "banana",
        ]) == EXIT_VALIDATION


@pytest.fixture
def hard_log_csv(tmp_path):
    """A log where the pure-Python ILP needs far longer than any test
    deadline, so --deadline-ms reliably interrupts it."""
    rng = random.Random(3)
    width = 10
    schema = Schema.anonymous(width)
    log = BooleanTable(schema, [rng.getrandbits(width) or 1 for _ in range(200)])
    path = tmp_path / "hard.csv"
    save_table_csv(log, path)
    return str(path), ",".join(schema.names_of((1 << width) - 1))


class TestRuntimeFlags:
    def test_deadline_with_fallback_chain_degrades(self, capsys, hard_log_csv):
        path, names = hard_log_csv
        code = main([
            "solve", "--log", path, "--tuple", names, "--budget", "4",
            "--deadline-ms", "50", "--fallback",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "runtime:" in out
        assert "ILP: interrupted" in out
        assert "queries satisfied" in out

    def test_explicit_fallback_chain(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--fallback", "MaxFreqItemSets,ConsumeAttr",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "runtime: exact" in out
        assert "queries satisfied: 3 of 5" in out

    def test_deadline_without_fallback_bounds_chosen_algorithm(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "ConsumeAttr", "--deadline-ms", "5000",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "runtime: exact" in out
        assert "ConsumeAttr: completed" in out

    def test_empty_fallback_chain_rejected(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", "ac", "--budget", "1",
            "--fallback", " , ",
        ])
        assert code == EXIT_VALIDATION


class TestExitCodes:
    def test_validation_error_is_2(self, log_csv):
        assert main(["solve", "--log", log_csv, "--budget", "1"]) == EXIT_VALIDATION

    def test_deadline_exhaustion_is_4(self, capsys, hard_log_csv):
        path, names = hard_log_csv
        code = main([
            "solve", "--log", path, "--tuple", names, "--budget", "4",
            "--algorithm", "ILP", "--deadline-ms", "40",
        ])
        assert code == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_solver_budget_exhaustion_is_4(self, capsys, hard_log_csv, monkeypatch):
        import repro.cli as cli
        from repro.common.errors import SolverBudgetExceededError

        def exploding(name, **kwargs):
            raise SolverBudgetExceededError("node budget exhausted")

        monkeypatch.setattr(cli, "make_solver", exploding)
        path, names = hard_log_csv
        code = main([
            "solve", "--log", path, "--tuple", names, "--budget", "4",
        ])
        assert code == EXIT_INTERRUPTED

    def test_infeasible_problem_is_3(self, capsys, log_csv, monkeypatch):
        import repro.cli as cli
        from repro.common.errors import InfeasibleProblemError

        def infeasible(name, **kwargs):
            raise InfeasibleProblemError("no feasible selection")

        monkeypatch.setattr(cli, "make_solver", infeasible)
        code = main(["solve", "--log", log_csv, "--tuple", "ac", "--budget", "1"])
        assert code == EXIT_INFEASIBLE
        assert "no feasible selection" in capsys.readouterr().err

    def test_other_library_errors_are_1(self, capsys, log_csv, monkeypatch):
        import repro.cli as cli
        from repro.common.errors import ReproError

        def broken(name, **kwargs):
            raise ReproError("internal failure")

        monkeypatch.setattr(cli, "make_solver", broken)
        code = main(["solve", "--log", log_csv, "--tuple", "ac", "--budget", "1"])
        assert code == EXIT_ERROR
        assert "internal failure" in capsys.readouterr().err

    def test_error_messages_are_one_line(self, capsys, log_csv, monkeypatch):
        import repro.cli as cli
        from repro.common.errors import ReproError

        def broken(name, **kwargs):
            raise ReproError("first line\nsecond line")

        monkeypatch.setattr(cli, "make_solver", broken)
        main(["solve", "--log", log_csv, "--tuple", "ac", "--budget", "1"])
        err = capsys.readouterr().err
        assert err == "error: first line\n"


class TestProfileCommand:
    def test_profiles_csv_log(self, capsys, log_csv):
        assert main(["profile", "--log", log_csv]) == 0
        out = capsys.readouterr().out
        assert "queries: 5" in out
        assert "power_doors" in out

    def test_pairs_flag(self, capsys, log_csv):
        assert main(["profile", "--log", log_csv, "--pairs", "0"]) == 0
        assert "co-occurring" not in capsys.readouterr().out

    def test_bad_format(self, capsys, tmp_path):
        path = tmp_path / "log.parquet"
        path.write_text("x")
        assert main(["profile", "--log", str(path)]) == 2


class TestCertifyFlag:
    def test_certificate_printed_for_greedy(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "ConsumeAttr", "--certify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certificate:" in out

    def test_optimal_certified_as_optimal(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--certify",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "provably optimal" in out or "of the optimum" in out


class TestAlternativeAlgorithms:
    def test_local_search_via_cli(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv,
            "--tuple", "ac,four_door,power_doors,auto_trans,power_brakes",
            "--budget", "3", "--algorithm", "LocalSearch",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LocalSearch" in out
        assert "queries satisfied: 3 of 5" in out


class TestTelemetryFlags:
    TUPLE = "ac,four_door,power_doors,auto_trans,power_brakes"

    def _solve(self, log_csv, *extra):
        return main([
            "solve", "--log", log_csv, "--tuple", self.TUPLE,
            "--budget", "3", *extra,
        ])

    def test_metrics_to_stdout_prometheus(self, capsys, log_csv):
        assert self._solve(log_csv, "--metrics-out", "-") == EXIT_OK
        out = capsys.readouterr().out
        assert "# TYPE repro_solver_solves_total counter" in out
        assert 'repro_solver_solves_total{algorithm="MaxFreqItemSets"} 1' in out
        assert "repro_itemset_dfs_expansions_total" in out
        # zero-initialised families keep the exposition schema-stable
        assert "repro_simplex_pivots_total 0" in out
        assert 'repro_solver_solve_seconds_bucket{algorithm="MaxFreqItemSets",le="+Inf"} 1' in out

    def test_metrics_json_to_file(self, capsys, log_csv, tmp_path):
        target = tmp_path / "metrics.json"
        code = self._solve(
            log_csv, "--metrics-out", str(target), "--metrics-format", "json"
        )
        assert code == EXIT_OK
        snapshot = json.loads(target.read_text())
        solves = snapshot["repro_solver_solves_total"]
        assert solves["type"] == "counter"
        # the greedy seed pass runs ConsumeAttr inside MaxFreqItemSets,
        # so both algorithms appear in the samples
        assert {
            "labels": {"algorithm": "MaxFreqItemSets"}, "value": 1.0
        } in solves["samples"]
        assert "queries satisfied" in capsys.readouterr().out

    def test_trace_jsonl_nests_under_cli_spans(self, log_csv, tmp_path):
        target = tmp_path / "trace.jsonl"
        assert self._solve(log_csv, "--trace-out", str(target)) == EXIT_OK
        records = [json.loads(line) for line in target.read_text().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert by_name["cli.solve"]["parent_id"] is None
        assert by_name["cli.load"]["parent_id"] == by_name["cli.solve"]["span_id"]
        assert by_name["solve"]["attributes"]["algorithm"] == "MaxFreqItemSets"

    def test_harness_run_emits_fallback_counters(self, capsys, log_csv):
        code = self._solve(
            log_csv, "--fallback", "MaxFreqItemSets,ConsumeAttrCumul",
            "--metrics-out", "-",
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert 'repro_harness_runs_total{status="exact"} 1' in out
        assert 'repro_harness_attempts_total{solver="MaxFreqItemSets",status="completed"} 1' in out
        assert "repro_harness_run_seconds_count 1" in out
        assert 'repro_index_bitmap_ops_total{op="popcount",kernel="python"}' in out

    def test_metrics_dumped_even_when_the_solve_fails(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", self.TUPLE,
            "--budget", "3", "--algorithm", "NoSuchAlgorithm",
            "--metrics-out", "-",
        ])
        assert code == EXIT_VALIDATION
        out = capsys.readouterr().out
        # the exposition still arrives, with no solves recorded
        assert "# TYPE repro_solver_solves_total counter" in out
        assert "repro_solver_solves_total{" not in out

    def test_no_flags_means_no_recorder(self, capsys, log_csv):
        from repro.obs import NULL_RECORDER, get_recorder

        assert self._solve(log_csv) == EXIT_OK
        assert get_recorder() is NULL_RECORDER
        assert "repro_" not in capsys.readouterr().out

    def test_recorder_uninstalled_after_telemetry_run(self, capsys, log_csv):
        from repro.obs import NULL_RECORDER, get_recorder

        assert self._solve(log_csv, "--metrics-out", "-") == EXIT_OK
        assert get_recorder() is NULL_RECORDER

    def test_events_out_writes_the_journal(self, capsys, log_csv, tmp_path):
        target = tmp_path / "events.jsonl"
        code = self._solve(
            log_csv, "--events-out", str(target),
            "--fallback", "ILP,MaxFreqItemSets", "--deadline-ms", "0",
        )
        assert code == EXIT_OK  # the greedy safety net still answers
        kinds = [
            json.loads(line)["kind"]
            for line in target.read_text().splitlines()
        ]
        assert "harness.fallback" in kinds or "harness.degraded" in kinds

    def test_flight_recorder_dump_fires_on_a_forced_failure(
        self, capsys, log_csv, tmp_path
    ):
        target = tmp_path / "flight.jsonl"
        code = self._solve(
            log_csv, "--events-out", str(target),
            "--fallback", "ILP", "--deadline-ms", "0",
        )
        assert code == EXIT_INTERRUPTED  # the run itself failed...
        records = [
            json.loads(line) for line in target.read_text().splitlines()
        ]
        assert records, "flight recorder must dump on failure"
        # ...and the journal says why, at error severity
        assert any(
            r["kind"] == "harness.degraded" and r["level"] == "error"
            for r in records
        )

    def test_profile_out_writes_collapsed_stacks(self, capsys, log_csv, tmp_path):
        target = tmp_path / "flame.txt"
        assert self._solve(log_csv, "--profile-out", str(target)) == EXIT_OK
        for line in target.read_text().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack  # phase;module:func;...

    def test_serve_metrics_announces_and_shuts_down(self, capsys, log_csv):
        assert self._solve(log_csv, "--serve-metrics", "0") == EXIT_OK
        err = capsys.readouterr().err
        assert "telemetry: serving on http://127.0.0.1:" in err
        # no stray daemon keeps the port: a fresh server binds port 0 fine
        from repro.obs import NULL_RECORDER, get_recorder

        assert get_recorder() is NULL_RECORDER


class TestHelpEpilog:
    def test_exit_codes_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["solve", "--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        for line in ("0  success", "3  ", "4  "):
            assert line in out


class TestStreamCommand:
    def test_replay_succeeds(self, capsys):
        code = main([
            "stream", "--width", "10", "--size", "300", "--window", "100",
            "--check-every", "25", "--chain", "ConsumeAttrCumul",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "stream: 300 queries" in out
        assert "reoptimizations:" in out
        assert "cache:" in out
        assert "index: epoch 300" in out

    def test_cache_can_be_disabled(self, capsys):
        code = main([
            "stream", "--width", "8", "--size", "120", "--window", "60",
            "--check-every", "30", "--chain", "ConsumeAttr", "--cache-size", "0",
        ])
        assert code == EXIT_OK
        assert "cache: disabled" in capsys.readouterr().out

    def test_bad_window_is_validation_error(self, capsys):
        assert main(["stream", "--window", "0"]) == EXIT_VALIDATION
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "window" in err

    def test_bad_compact_threshold_is_validation_error(self, capsys):
        assert main(["stream", "--compact-threshold", "1.5"]) == EXIT_VALIDATION
        assert "compact-threshold" in capsys.readouterr().err

    def test_negative_cache_size_is_validation_error(self, capsys):
        assert main(["stream", "--cache-size", "-1"]) == EXIT_VALIDATION
        assert "cache-size" in capsys.readouterr().err

    def test_unknown_chain_algorithm_is_validation_error(self, capsys):
        assert main(["stream", "--chain", "NoSuchSolver"]) == EXIT_VALIDATION

    def test_deadline_exhaustion_is_4(self, capsys):
        """An ILP-only chain under a tiny deadline fails before any
        incumbent exists, and --no-stale leaves nothing to serve."""
        code = main([
            "stream", "--width", "10", "--size", "300", "--window", "250",
            "--check-every", "50", "--chain", "ILP", "--deadline-ms", "5",
            "--no-stale",
        ])
        assert code == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_stream_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["stream", "--help"])
        assert "exit codes:" in capsys.readouterr().out

    def test_stream_telemetry_flags(self, capsys, tmp_path):
        """The stream subcommand shares the solve telemetry surface."""
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "stream", "--width", "8", "--size", "200", "--window", "80",
            "--check-every", "40", "--chain", "ConsumeAttrCumul",
            "--events-out", str(events), "--metrics-out", str(metrics),
        ])
        assert code == EXIT_OK
        rendered = metrics.read_text()
        assert "repro_stream_appends_total 200" in rendered
        # the sliding tick-latency window made it into the exposition
        assert 'source="repro_stream_append_seconds"' in rendered
        assert events.exists()  # journal dumps even when nothing degraded

    def test_stream_serve_metrics_registers_health_sources(self, capsys):
        """--serve-metrics on a replay wires window health into /healthz."""
        import re
        import urllib.request

        from repro import cli as cli_module

        captured = {}
        original = cli_module._telemetry_scope

        def peeking_scope(args, span_name, **kwargs):
            scope = original(args, span_name, **kwargs)

            class Wrapper:
                def __enter__(self):
                    inner = scope.__enter__()
                    captured["server"] = inner.server
                    body = urllib.request.urlopen(
                        inner.server.url + "/healthz", timeout=5
                    ).read().decode()
                    captured["early_health"] = json.loads(body)
                    return inner

                def __exit__(self, *exc_info):
                    return scope.__exit__(*exc_info)

            return Wrapper()

        cli_module._telemetry_scope = peeking_scope
        try:
            code = main([
                "stream", "--width", "8", "--size", "150", "--window", "60",
                "--check-every", "30", "--chain", "ConsumeAttrCumul",
                "--serve-metrics", "0",
            ])
        finally:
            cli_module._telemetry_scope = original
        assert code == EXIT_OK
        assert not captured["server"].running  # clean shutdown
        # once the replay built its monitor it registered the probe
        assert "window" in captured["server"].health_checks
        err = capsys.readouterr().err
        assert re.search(r"serving on http://127\.0\.0\.1:\d+", err)

    def test_store_dir_then_resume(self, capsys, tmp_path):
        """The durability loop through the CLI: one run writes a store,
        a second run with --resume recovers it and keeps going."""
        store = str(tmp_path / "store")
        code = main([
            "stream", "--width", "8", "--size", "120", "--window", "60",
            "--check-every", "30", "--chain", "ConsumeAttrCumul",
            "--store-dir", store, "--fsync", "never",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert f"store: {store}" in out
        assert "WAL records" in out
        code = main([
            "stream", "--width", "8", "--size", "60", "--window", "60",
            "--check-every", "30", "--chain", "ConsumeAttrCumul",
            "--store-dir", store, "--resume", "--fsync", "never",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert f"store: resumed {store} from snapshot" in out
        assert "cache entries" in out

    def test_store_dir_refuses_nonempty_without_resume(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        args = [
            "stream", "--width", "8", "--size", "40", "--window", "40",
            "--check-every", "20", "--chain", "ConsumeAttrCumul",
            "--store-dir", store, "--fsync", "never",
        ]
        assert main(args) == EXIT_OK
        capsys.readouterr()
        assert main(args) == EXIT_VALIDATION
        assert "already contains a store" in capsys.readouterr().err

    def test_resume_without_store_dir_is_validation_error(self, capsys):
        assert main([
            "stream", "--width", "8", "--size", "40", "--resume",
        ]) == EXIT_VALIDATION
        assert "store-dir" in capsys.readouterr().err

    def test_bad_snapshot_every_is_validation_error(self, capsys):
        assert main([
            "stream", "--width", "8", "--size", "40", "--snapshot-every", "0",
        ]) == EXIT_VALIDATION
        assert "snapshot-every" in capsys.readouterr().err


class TestKernelFlag:
    TUPLE = "ac,four_door,power_doors,auto_trans,power_brakes"

    @pytest.mark.parametrize("kernel", ["python", "numpy", "compressed", "auto"])
    def test_solve_accepts_every_kernel(self, capsys, log_csv, kernel):
        code = main([
            "solve", "--log", log_csv, "--tuple", self.TUPLE,
            "--budget", "3", "--kernel", kernel,
        ])
        assert code == EXIT_OK
        assert "queries satisfied: 3 of 5" in capsys.readouterr().out

    def test_unknown_kernel_is_an_argparse_error(self, log_csv):
        with pytest.raises(SystemExit):
            main([
                "solve", "--log", log_csv, "--tuple", self.TUPLE,
                "--budget", "3", "--kernel", "simd",
            ])

    def test_numpy_kernel_without_numpy_is_exit_2(
        self, capsys, log_csv, monkeypatch
    ):
        from repro.booldata import kernels

        monkeypatch.setattr(kernels, "_numpy_available", False)
        code = main([
            "solve", "--log", log_csv, "--tuple", self.TUPLE,
            "--budget", "3", "--kernel", "numpy",
        ])
        assert code == EXIT_VALIDATION
        assert "repro[fast]" in capsys.readouterr().err

    def test_metrics_carry_the_kernel_label(self, capsys, log_csv):
        code = main([
            "solve", "--log", log_csv, "--tuple", self.TUPLE,
            "--budget", "3", "--kernel", "compressed", "--metrics-out", "-",
        ])
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert 'repro_index_bitmap_ops_total{op="popcount",kernel="compressed"}' in out

    def test_inventory_accepts_a_kernel(self, capsys, log_csv, database_csv):
        code = main([
            "inventory", "--log", log_csv, "--database", database_csv,
            "--budget", "3", "--jobs", "1", "--kernel", "compressed",
        ])
        assert code == EXIT_OK
        assert "listings" in capsys.readouterr().out

    def test_stream_accepts_a_kernel(self, capsys):
        code = main([
            "stream", "--width", "8", "--size", "120", "--window", "60",
            "--check-every", "30", "--chain", "ConsumeAttr",
            "--kernel", "compressed",
        ])
        assert code == EXIT_OK
        assert "stream: 120 queries" in capsys.readouterr().out
