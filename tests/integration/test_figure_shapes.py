"""Shape assertions for every figure of the paper's evaluation.

These run the experiment harness at a tiny scale and assert the
*qualitative* claims of Section VII — who wins, what is missing, what
orders how — so a regression that flips a conclusion fails CI even
though absolute times move with hardware.
"""

import pytest

from repro.experiments import ExperimentScale, run_experiment


@pytest.fixture(scope="module")
def scale() -> ExperimentScale:
    return ExperimentScale(
        name="shape-test",
        cars=300,
        cars_per_point=2,
        real_queries=60,
        synthetic_queries=120,
        log_sizes=(40, 120),
        attribute_counts=(10, 16),
        ilp_max_log=40,
        budgets=(2, 4, 6),
        seed=5,
    )


@pytest.fixture(scope="module")
def fig6(scale):
    return run_experiment("fig6", scale)


@pytest.fixture(scope="module")
def fig7(scale):
    return run_experiment("fig7", scale)


@pytest.fixture(scope="module")
def fig9(scale):
    return run_experiment("fig9", scale)


@pytest.fixture(scope="module")
def fig10(scale):
    return run_experiment("fig10", scale)


class TestFig6Shape:
    def test_greedies_orders_of_magnitude_faster_than_optimal(self, fig6):
        for index in range(len(fig6.x_values)):
            slowest_greedy = max(
                fig6.series[name][index]
                for name in ("ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries")
            )
            fastest_optimal = min(
                fig6.series["ILP"][index], fig6.series["MaxFreqItemSets"][index]
            )
            assert slowest_greedy < fastest_optimal

    def test_all_series_positive(self, fig6):
        for values in fig6.series.values():
            assert all(value > 0 for value in values)


class TestFig7Shape:
    def test_optimal_dominates_everywhere(self, fig7):
        for name in ("ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries"):
            for greedy, optimal in zip(fig7.series[name], fig7.series["Optimal"]):
                assert greedy <= optimal + 1e-9

    def test_small_budgets_satisfy_nothing_on_real_workload(self, fig7):
        """All real queries have > 3 attributes (paper's anchor)."""
        for x, optimal in zip(fig7.x_values, fig7.series["Optimal"]):
            if x <= 3:
                assert optimal == 0

    def test_quality_monotone_in_budget(self, fig7):
        optimal = fig7.series["Optimal"]
        assert optimal == sorted(optimal)


class TestFig9Shape:
    def test_greedies_capture_most_of_the_optimum(self, fig9):
        """At this tiny scale the greedy gap is noisy; the standard-scale
        run recorded in EXPERIMENTS.md shows ConsumeAttr at 87-97% of
        optimal.  Here we pin a conservative floor and the strictness of
        the gap."""
        total_optimal = sum(fig9.series["Optimal"])
        for name in ("ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries"):
            total_greedy = sum(fig9.series[name])
            assert 0.4 * total_optimal <= total_greedy < total_optimal

    def test_quality_monotone_in_budget(self, fig9):
        assert fig9.series["Optimal"] == sorted(fig9.series["Optimal"])


class TestFig10Shape:
    def test_ilp_series_truncated(self, fig10):
        """The paper's missing ILP points: present early, absent late."""
        ilp = fig10.series["ILP"]
        assert ilp[0] is not None
        assert ilp[-1] is None

    def test_other_series_complete(self, fig10):
        for name, values in fig10.series.items():
            if name != "ILP":
                assert all(value is not None for value in values)


class TestFig11Shape:
    def test_both_optimal_algorithms_measured_everywhere(self, scale):
        result = run_experiment("fig11", scale)
        assert all(value > 0 for value in result.series["ILP"])
        assert all(value > 0 for value in result.series["MaxFreqItemSets"])

    def test_itemsets_wins_on_narrow_schemas(self, scale):
        """The narrow end of the Fig 11 crossover: at small M with a
        long-enough log, MaxFreqItemSets beats ILP (the wide end needs
        larger M than a tiny-scale run affords; the standard-scale
        crossover is recorded in EXPERIMENTS.md)."""
        result = run_experiment("fig11", scale)
        assert result.series["MaxFreqItemSets"][0] < result.series["ILP"][0]
