"""Public-surface integrity: exports exist, README quickstart runs."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.common",
    "repro.booldata",
    "repro.retrieval",
    "repro.lp",
    "repro.mining",
    "repro.data",
    "repro.core",
    "repro.variants",
    "repro.simulate",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    """Every name in __all__ must be importable from the package."""
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__") and package.__all__
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__.strip()) > 20


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_readme_quickstart_verbatim():
    """The README's quickstart block must keep working exactly as shown."""
    from repro import BooleanTable, Schema, VisibilityProblem, make_solver

    schema = Schema(
        ["ac", "four_door", "turbo", "power_doors", "auto_trans", "power_brakes"]
    )
    query_log = BooleanTable.from_bit_rows(schema, [
        [1, 1, 0, 0, 0, 0],
        [1, 0, 0, 1, 0, 0],
        [0, 1, 0, 1, 0, 0],
        [0, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 1, 0],
    ])
    new_car = schema.mask_from_bits([1, 1, 0, 1, 1, 1])

    problem = VisibilityProblem(query_log, new_car, budget=3)
    solution = make_solver("MaxFreqItemSets").solve(problem)
    assert solution.kept_attributes == ["ac", "four_door", "power_doors"]
    assert solution.satisfied == 3


def test_readme_mentions_every_example_script():
    from pathlib import Path

    readme = Path(__file__).resolve().parents[2] / "README.md"
    text = readme.read_text()
    examples_dir = Path(__file__).resolve().parents[2] / "examples"
    for script in sorted(examples_dir.glob("*.py")):
        assert script.name in text, f"README does not mention {script.name}"


def test_design_md_lists_every_subpackage():
    from pathlib import Path

    design = (Path(__file__).resolve().parents[2] / "DESIGN.md").read_text()
    for package_name in PACKAGES[1:]:
        short = package_name.split(".")[1]
        assert short in design, f"DESIGN.md does not mention {short}"
