"""Tests for the harness-backed serving path (monitor + marketplace)."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.runtime import CircuitBreaker, FaultPlan, SolverHarness
from repro.simulate import Marketplace, VisibilityMonitor


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(6)


@pytest.fixture
def traffic(schema) -> list[int]:
    return [0b000011, 0b000110, 0b001100, 0b000011, 0b000101, 0b011000]


def make_monitor(schema, **overrides):
    defaults = dict(
        new_tuple=0b011111,
        keep_mask=0b000011,
        budget=2,
        schema=schema,
        window_size=10,
    )
    defaults.update(overrides)
    return VisibilityMonitor(**defaults)


class TestMonitorAnytimeReoptimization:
    def test_reoptimizes_through_the_harness(self, schema, traffic):
        harness = SolverHarness(["MaxFreqItemSets", "ConsumeAttrCumul"])
        monitor = make_monitor(schema, harness=harness)
        monitor.observe_many(traffic)
        outcome = monitor.reoptimize_anytime()
        assert outcome.status == "exact"
        assert monitor.keep_mask == outcome.solution.keep_mask
        assert monitor.status().realized_share >= 0.8

    def test_failed_run_keeps_the_current_ad(self, schema, traffic):
        harness = SolverHarness(
            ["ConsumeAttr"], fault_plan=FaultPlan({}, default="crash")
        )
        monitor = make_monitor(schema, harness=harness)
        monitor.observe_many(traffic)
        before = monitor.keep_mask
        outcome = monitor.reoptimize_anytime()
        assert outcome.status == "failed"
        assert monitor.keep_mask == before

    def test_breaker_routes_around_a_dead_exact_tier(self, schema, traffic):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        harness = SolverHarness(
            ["ILP", "ConsumeAttrCumul"],
            fault_plan=FaultPlan({"ILP": "crash"}),
            breaker=breaker,
        )
        monitor = make_monitor(schema, harness=harness)
        monitor.observe_many(traffic)
        monitor.reoptimize_anytime()
        monitor.reoptimize_anytime()
        assert breaker.is_open()
        outcome = monitor.reoptimize_anytime()
        assert outcome.attempts[0].status == "skipped"
        assert outcome.status == "fallback"

    def test_harness_argument_overrides_constructor(self, schema, traffic):
        monitor = make_monitor(schema)
        monitor.observe_many(traffic)
        outcome = monitor.reoptimize_anytime(SolverHarness(["ConsumeAttr"]))
        assert outcome.status == "exact"

    def test_needs_a_harness(self, schema, traffic):
        monitor = make_monitor(schema)
        monitor.observe_many(traffic)
        with pytest.raises(ValidationError):
            monitor.reoptimize_anytime()

    def test_empty_window_returns_none(self, schema):
        monitor = make_monitor(schema, harness=SolverHarness(["ConsumeAttr"]))
        assert monitor.reoptimize_anytime() is None


class TestMarketplaceServing:
    def test_post_optimized_ad(self, schema, traffic):
        market = Marketplace(schema)
        log = BooleanTable(schema, traffic)
        ad_id, outcome = market.post_optimized_ad(
            0b011111, 2, log, SolverHarness(["MaxFreqItemSets", "ConsumeAttrCumul"])
        )
        assert outcome.status == "exact"
        assert market.ads[ad_id].mask == outcome.solution.keep_mask
        hits = market.run_workload(log)
        assert hits[ad_id] == outcome.solution.satisfied

    def test_failed_chain_posts_nothing(self, schema, traffic):
        market = Marketplace(schema)
        log = BooleanTable(schema, traffic)
        harness = SolverHarness(["ConsumeAttr"], fault_plan=FaultPlan({}, default="crash"))
        ad_id, outcome = market.post_optimized_ad(0b011111, 2, log, harness)
        assert ad_id is None
        assert outcome.status == "failed"
        assert len(market) == 0

    def test_schema_mismatch_rejected(self, schema, traffic):
        market = Marketplace(schema)
        other = BooleanTable(Schema.anonymous(3), [0b001])
        with pytest.raises(ValidationError):
            market.post_optimized_ad(0b011111, 2, other, SolverHarness(["ConsumeAttr"]))
