"""Tests for the marketplace simulation and generalization evaluation."""

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.core import MaxFreqItemsetsSolver, make_solver
from repro.data import generate_cars, synthetic_workload
from repro.retrieval import AttributeCountScore
from repro.simulate import (
    Marketplace,
    evaluate_strategies,
    random_selection,
    split_log,
)
from repro.simulate.evaluation import solver_strategy


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(6)


class TestMarketplace:
    def test_post_and_query(self, schema):
        market = Marketplace(schema)
        first = market.post_ad(0b000111, "small")
        second = market.post_ad(0b111000, "big")
        assert market.run_query(0b000011) == [first]
        assert market.run_query(0b100000) == [second]
        assert market.run_query(0) == [first, second]

    def test_workload_impressions(self, schema):
        market = Marketplace(schema)
        ad = market.post_ad(0b000111)
        log = BooleanTable(schema, [0b000001, 0b000010, 0b100000])
        impressions = market.run_workload(log)
        assert impressions[ad] == 2

    def test_topk_mode_caps_results(self, schema):
        market = Marketplace(schema, page_size=1, scoring=AttributeCountScore())
        small = market.post_ad(0b000001)
        big = market.post_ad(0b000111)
        assert market.run_query(0b000001) == [big]  # higher score wins

    def test_topk_ties_favor_newest(self, schema):
        market = Marketplace(schema, page_size=1, scoring=AttributeCountScore())
        older = market.post_ad(0b000011)
        newer = market.post_ad(0b000101)
        assert market.run_query(0b000001) == [newer]

    def test_topk_mode_validation(self, schema):
        with pytest.raises(ValidationError):
            Marketplace(schema, page_size=0, scoring=AttributeCountScore())
        with pytest.raises(ValidationError):
            Marketplace(schema, page_size=3)

    def test_schema_mismatch_rejected(self, schema):
        market = Marketplace(schema)
        other = BooleanTable(Schema.anonymous(3), [1])
        with pytest.raises(ValidationError):
            market.run_workload(other)

    def test_unknown_ad_id(self, schema):
        market = Marketplace(schema)
        log = BooleanTable(schema, [1])
        with pytest.raises(ValidationError):
            market.impressions_of(0, log)

    def test_impressions_match_satisfied_count(self, schema):
        """The simulation agrees with the analytic objective."""
        from repro.booldata.ops import satisfied_count

        market = Marketplace(schema)
        mask = 0b001011
        ad = market.post_ad(mask)
        log = BooleanTable(schema, [0b000001, 0b001000, 0b110000, 0b001011])
        assert market.impressions_of(ad, log) == satisfied_count(log, mask)

    def test_impressions_of_matches_workload_boolean_mode(self, schema):
        """Regression: the single-ad path used to replay the whole workload.

        The direct count must agree with the full simulation for every ad."""
        market = Marketplace(schema)
        ads = [market.post_ad(mask) for mask in (0b000111, 0b011100, 0b000001)]
        log = synthetic_workload(schema, 120, seed=17)
        full = market.run_workload(log)
        for ad in ads:
            assert market.impressions_of(ad, log) == full[ad]

    def test_impressions_of_matches_workload_topk_mode(self, schema):
        """Top-k mode counts only queries where the ad makes the first page."""
        market = Marketplace(schema, page_size=2, scoring=AttributeCountScore())
        ads = [
            market.post_ad(mask)
            for mask in (0b000011, 0b000110, 0b001100, 0b111000, 0b000101)
        ]
        log = synthetic_workload(schema, 150, seed=23)
        full = market.run_workload(log)
        for ad in ads:
            assert market.impressions_of(ad, log) == full[ad]

    def test_impressions_of_topk_score_ties(self, schema):
        """Ties on score break toward the newest ad, same as run_query."""
        market = Marketplace(schema, page_size=1, scoring=AttributeCountScore())
        older = market.post_ad(0b000011)
        newer = market.post_ad(0b000101)
        log = BooleanTable(schema, [0b000001, 0b000001, 0b000010])
        full = market.run_workload(log)
        assert market.impressions_of(older, log) == full[older]
        assert market.impressions_of(newer, log) == full[newer]

    def test_impressions_of_schema_mismatch_rejected(self, schema):
        market = Marketplace(schema)
        ad = market.post_ad(0b1)
        other = BooleanTable(Schema.anonymous(3), [1])
        with pytest.raises(ValidationError):
            market.impressions_of(ad, other)


class TestSplitLog:
    def test_sizes(self, schema):
        log = BooleanTable(schema, list(range(1, 11)))
        train, test = split_log(log, 0.7, seed=0)
        assert len(train) == 7
        assert len(test) == 3

    def test_partition(self, schema):
        log = BooleanTable(schema, list(range(1, 11)))
        train, test = split_log(log, 0.5, seed=1)
        assert sorted(list(train) + list(test)) == list(range(1, 11))

    def test_chronological_split(self, schema):
        log = BooleanTable(schema, [1, 2, 3, 4])
        train, test = split_log(log, 0.5, shuffle=False)
        assert list(train) == [1, 2]
        assert list(test) == [3, 4]

    def test_bad_fraction_rejected(self, schema):
        log = BooleanTable(schema, [1, 2])
        with pytest.raises(ValidationError):
            split_log(log, 1.0)

    def test_too_small_log_rejected(self, schema):
        with pytest.raises(ValidationError):
            split_log(BooleanTable(schema, [1]), 0.5)


class TestEvaluateStrategies:
    @pytest.fixture(scope="class")
    def setup(self):
        cars = generate_cars(400, seed=21)
        # zipf skew: real buyer populations concentrate on popular
        # attributes, which is what makes train-log optimization
        # transfer to future queries (see the overfitting test below)
        log = synthetic_workload(cars.schema, 600, seed=22, popularity="zipf")
        train, test = split_log(log, 0.5, seed=23)
        tuples = [cars.table[i] for i in cars.random_car_indices(4, seed=24)]
        return train, test, tuples

    def test_report_shape(self, setup):
        train, test, tuples = setup
        report = evaluate_strategies(
            {
                "optimal": solver_strategy(MaxFreqItemsetsSolver()),
                "random": random_selection(seed=0),
            },
            train, test, tuples, budget=5,
        )
        assert {o.name for o in report.outcomes} == {"optimal", "random"}
        assert report.train_queries == len(train)
        assert "strategy" in report.to_text()

    def test_optimal_dominates_on_train(self, setup):
        train, test, tuples = setup
        report = evaluate_strategies(
            {
                "optimal": solver_strategy(MaxFreqItemsetsSolver()),
                "greedy": solver_strategy(make_solver("ConsumeAttr")),
                "random": random_selection(seed=0),
            },
            train, test, tuples, budget=5,
        )
        optimal = report.outcome_of("optimal")
        assert optimal.train_visibility >= report.outcome_of("greedy").train_visibility
        assert optimal.train_visibility >= report.outcome_of("random").train_visibility

    def test_optimizing_on_train_pays_off_on_test(self, setup):
        """The paper's premise: log-optimized selection beats random on
        unseen future queries drawn from the same buyer population."""
        train, test, tuples = setup
        report = evaluate_strategies(
            {
                "optimal": solver_strategy(MaxFreqItemsetsSolver()),
                "random": random_selection(seed=0),
            },
            train, test, tuples, budget=5,
        )
        assert (
            report.outcome_of("optimal").test_visibility
            > report.outcome_of("random").test_visibility
        )

    def test_uniform_workload_overfits(self):
        """Negative control: with *uniform* attribute popularity the
        training log carries no transferable structure, so the
        train-optimal selection loses more of its value on held-out
        queries than it does under zipf skew."""
        cars = generate_cars(400, seed=21)
        tuples = [cars.table[i] for i in cars.random_car_indices(4, seed=24)]
        ratios = {}
        for popularity in ("uniform", "zipf"):
            log = synthetic_workload(
                cars.schema, 600, seed=22, popularity=popularity
            )
            train, test = split_log(log, 0.5, seed=23)
            report = evaluate_strategies(
                {"optimal": solver_strategy(MaxFreqItemsetsSolver())},
                train, test, tuples, budget=5,
            )
            ratios[popularity] = report.outcome_of("optimal").generalization_ratio
        assert ratios["zipf"] > ratios["uniform"]

    def test_invalid_strategy_detected(self, setup):
        train, test, tuples = setup
        with pytest.raises(ValidationError):
            evaluate_strategies(
                {"cheater": lambda problem: problem.schema.full},
                train, test, tuples, budget=2,
            )

    def test_missing_outcome_lookup(self, setup):
        train, test, tuples = setup
        report = evaluate_strategies(
            {"random": random_selection(0)}, train, test, tuples, budget=3
        )
        with pytest.raises(ValidationError):
            report.outcome_of("optimal")

    def test_empty_tuples_rejected(self, setup):
        train, test, _ = setup
        with pytest.raises(ValidationError):
            evaluate_strategies({"r": random_selection(0)}, train, test, [], 3)
