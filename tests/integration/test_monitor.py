"""Tests for the streaming visibility monitor."""

import pytest

from repro.booldata import Schema
from repro.common.errors import ValidationError
from repro.core import MaxFreqItemsetsSolver
from repro.simulate.monitor import VisibilityMonitor


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(6)


def make_monitor(schema, **overrides):
    defaults = dict(
        new_tuple=0b011111,
        keep_mask=0b000011,
        budget=2,
        schema=schema,
        window_size=10,
        tolerance=0.8,
    )
    defaults.update(overrides)
    return VisibilityMonitor(**defaults)


class TestValidation:
    def test_mask_outside_tuple_rejected(self, schema):
        with pytest.raises(ValidationError):
            make_monitor(schema, keep_mask=0b100000)

    def test_mask_over_budget_rejected(self, schema):
        with pytest.raises(ValidationError):
            make_monitor(schema, keep_mask=0b000111, budget=2)

    def test_bad_window_rejected(self, schema):
        with pytest.raises(ValidationError):
            make_monitor(schema, window_size=0)

    def test_bad_tolerance_rejected(self, schema):
        with pytest.raises(ValidationError):
            make_monitor(schema, tolerance=0.0)


class TestObservation:
    def test_hit_and_miss_counting(self, schema):
        monitor = make_monitor(schema)
        assert monitor.observe(0b000001) is True
        assert monitor.observe(0b000100) is False
        status = monitor.status()
        assert status.window_queries == 2
        assert status.realized == 1

    def test_window_eviction_updates_realized(self, schema):
        monitor = make_monitor(schema, window_size=2)
        monitor.observe(0b000001)  # hit
        monitor.observe(0b000100)  # miss
        monitor.observe(0b000100)  # miss; evicts the hit
        status = monitor.status()
        assert status.window_queries == 2
        assert status.realized == 0

    def test_observe_many(self, schema):
        monitor = make_monitor(schema)
        hits = monitor.observe_many([0b000001, 0b000010, 0b010000])
        assert hits == 2

    def test_empty_status(self, schema):
        status = make_monitor(schema).status()
        assert status.window_queries == 0
        assert not status.should_reoptimize
        assert status.realized_share == 1.0


class TestDriftDetection:
    def test_no_alarm_while_selection_fits_traffic(self, schema):
        monitor = make_monitor(schema)
        monitor.observe_many([0b000001, 0b000010, 0b000011] * 3)
        status = monitor.status()
        assert status.realized == status.achievable
        assert not status.should_reoptimize

    def test_alarm_after_interest_drift(self, schema):
        """Traffic drifts from attributes {0,1} to {2,3}: the stale ad
        stops matching while a re-optimized ad would match everything."""
        monitor = make_monitor(schema, window_size=6)
        monitor.observe_many([0b000011] * 6)       # old interest
        monitor.observe_many([0b001100] * 6)        # drift fills the window
        status = monitor.status()
        assert status.realized == 0
        assert status.achievable == 6
        assert status.should_reoptimize

    def test_reoptimize_recovers_visibility(self, schema):
        monitor = make_monitor(schema, window_size=6)
        monitor.observe_many([0b001100] * 6)
        assert monitor.status().should_reoptimize
        new_mask = monitor.reoptimize(MaxFreqItemsetsSolver())
        assert new_mask == 0b001100
        after = monitor.status()
        assert after.realized == 6
        assert not after.should_reoptimize

    def test_reoptimize_on_empty_window_is_noop(self, schema):
        monitor = make_monitor(schema)
        assert monitor.reoptimize(MaxFreqItemsetsSolver()) == monitor.keep_mask

    def test_realized_share(self, schema):
        monitor = make_monitor(schema, window_size=4, tolerance=0.9)
        monitor.observe_many([0b000011, 0b000011, 0b001100, 0b001100])
        status = monitor.status()
        assert status.realized_share == pytest.approx(
            status.realized / status.achievable
        )


class TestCustomEstimator:
    def test_exact_estimator_raises_the_bar(self, schema):
        """With an exact achievable estimator the monitor flags cases the
        greedy estimator would tolerate."""
        from repro.booldata import BooleanTable
        from repro.core import BruteForceSolver, ConsumeAttrSolver

        # traffic where greedy underestimates the achievable optimum
        traffic = [0b00111] * 4 + [0b11000] * 3
        greedy_monitor = make_monitor(
            schema, new_tuple=0b11111, keep_mask=0b00011, budget=2,
            window_size=7, tolerance=0.9, estimator=ConsumeAttrSolver(),
        )
        exact_monitor = make_monitor(
            schema, new_tuple=0b11111, keep_mask=0b00011, budget=2,
            window_size=7, tolerance=0.9, estimator=BruteForceSolver(),
        )
        greedy_monitor.observe_many(traffic)
        exact_monitor.observe_many(traffic)
        greedy_status = greedy_monitor.status()
        exact_status = exact_monitor.status()
        assert exact_status.achievable >= greedy_status.achievable
        assert exact_status.should_reoptimize  # realized 0 vs achievable 3


class TestStreamingWindow:
    def test_window_is_cached_per_tick(self, schema):
        """status() + reoptimize() in one tick share one materialization."""
        monitor = make_monitor(schema)
        monitor.observe_many([0b000011, 0b000110, 0b000011])
        first = monitor.window
        assert monitor.window is first           # no mutation in between
        monitor.observe(0b000001)
        assert monitor.window is not first       # new epoch, new snapshot

    def test_window_snapshot_has_incremental_index(self, schema):
        from repro.booldata.index import VerticalIndex

        monitor = make_monitor(schema, window_size=3)
        monitor.observe_many([0b000011, 0b000110, 0b000011, 0b010001])
        window = monitor.window
        assert window.rows == [0b000110, 0b000011, 0b010001]
        index = window.cached_vertical_index
        assert index is not None
        assert index.columns == VerticalIndex(schema.width, window.rows).columns

    def test_cached_monitor_matches_uncached(self, schema):
        """A solve-cache in front of the estimator never changes answers."""
        traffic = [0b000011, 0b000110, 0b001100, 0b000011, 0b011000] * 4
        plain = make_monitor(schema)
        cached = make_monitor(schema, cache_size=16)
        for query in traffic:
            assert plain.observe(query) == cached.observe(query)
            plain_status, cached_status = plain.status(), cached.status()
            assert plain_status == cached_status
        assert cached.cache.hits > 0 or cached.cache.misses > 0

    def test_reoptimize_through_cache(self, schema):
        monitor = make_monitor(schema, cache_size=8)
        monitor.observe_many([0b001100] * 6)
        mask = monitor.reoptimize(MaxFreqItemsetsSolver())
        assert mask == 0b001100
        again = monitor.reoptimize(MaxFreqItemsetsSolver())
        assert again == mask
        assert monitor.cache.hits >= 1

    def test_stream_exposed_for_shared_use(self, schema):
        monitor = make_monitor(schema, window_size=4)
        monitor.observe_many([0b000011] * 6)
        assert len(monitor.stream) == 4
        assert monitor.stream.epoch == 6
