"""Integration tests: full pipelines across subsystem boundaries."""

import pytest

from repro import (
    BooleanTable,
    IlpSolver,
    MaximalItemsetIndex,
    MaxFreqItemsetsSolver,
    Schema,
    VisibilityProblem,
    make_solver,
)
from repro.core import BruteForceSolver
from repro.data import generate_cars, real_workload_surrogate, synthetic_workload
from repro.retrieval import AttributeCountScore, BooleanRetrievalEngine
from repro.variants import TopkVisibilityProblem, solve_per_attribute, solve_topk


@pytest.fixture(scope="module")
def cars():
    return generate_cars(600, seed=10)


@pytest.fixture(scope="module")
def real_log(cars):
    return real_workload_surrogate(cars.schema, 90, seed=11)


@pytest.fixture(scope="module")
def synth_log(cars):
    return synthetic_workload(cars.schema, 150, seed=12)


class TestRealisticPipeline:
    def test_exact_algorithms_agree_on_cars_data(self, cars, synth_log):
        for index in (0, 5, 17):
            car = cars.table[index]
            for budget in (3, 5):
                problem = VisibilityProblem(synth_log, car, budget)
                mfi = MaxFreqItemsetsSolver().solve(problem)
                ilp = IlpSolver(backend="native").solve(problem)
                assert mfi.satisfied == ilp.satisfied, (index, budget)

    def test_real_workload_m3_is_zero(self, cars, real_log):
        """The paper's anchor: every real query has > 3 attributes."""
        for index in (1, 2, 3):
            problem = VisibilityProblem(real_log, cars.table[index], 3)
            assert MaxFreqItemsetsSolver().solve(problem).satisfied == 0

    def test_greedy_quality_gap_reasonable(self, cars, synth_log):
        """ConsumeAttr is near-optimal on average (Fig 7/9)."""
        total_optimal = 0
        total_greedy = 0
        for index in range(8):
            problem = VisibilityProblem(synth_log, cars.table[index], 5)
            total_optimal += MaxFreqItemsetsSolver().solve(problem).satisfied
            total_greedy += make_solver("ConsumeAttr").solve(problem).satisfied
        assert total_greedy <= total_optimal
        assert total_greedy >= 0.6 * total_optimal

    def test_inserting_compressed_tuple_achieves_visibility(self, cars, synth_log):
        """Close the loop: insert t' into the database and check that the
        engine retrieves it for exactly the satisfied queries."""
        car = cars.table[17]
        problem = VisibilityProblem(synth_log, car, 5)
        solution = MaxFreqItemsetsSolver().solve(problem)

        extended = BooleanTable(cars.schema, list(cars.table) + [solution.keep_mask])
        engine = BooleanRetrievalEngine(extended)
        new_row_index = len(extended) - 1
        retrieving = sum(
            1
            for query in synth_log
            if new_row_index in engine.conjunctive_search(query)
        )
        assert retrieving == solution.satisfied


class TestPreprocessingWorkflow:
    def test_index_amortizes_across_tuples(self, synth_log, cars):
        index = MaximalItemsetIndex(synth_log)
        solver = MaxFreqItemsetsSolver(index=index, threshold=3)
        direct = MaxFreqItemsetsSolver(threshold=3)
        for car_index in (2, 4, 8):
            problem = VisibilityProblem(synth_log, cars.table[car_index], 4)
            assert (
                solver.solve(problem).satisfied == direct.solve(problem).satisfied
            )
        assert index._cache  # something was actually cached


class TestVariantsPipeline:
    def test_per_attribute_on_cars(self, cars, synth_log):
        result = solve_per_attribute(BruteForceSolver(), synth_log, cars.table[3])
        assert result.ratio >= 0

    def test_topk_pipeline(self, cars, synth_log):
        problem = TopkVisibilityProblem(
            database=cars.table,
            log=synth_log,
            new_tuple=cars.table[9],
            budget=5,
            scoring=AttributeCountScore(),
            k=25,
        )
        solution = solve_topk(MaxFreqItemsetsSolver(), problem)
        assert solution.satisfied == problem.visibility(solution.keep_mask)


class TestClaimedComplexity:
    def test_clique_reduction_instance(self):
        """The NP-hardness reduction of Theorem 1, run forwards: a clique
        of size r exists iff some m=r compression satisfies r(r-1)/2 edge
        queries.  Verify on a graph with a planted 4-clique."""
        width = 7
        schema = Schema.anonymous(width)
        clique = [0, 2, 4, 5]
        edges = [(a, b) for i, a in enumerate(clique) for b in clique[i + 1:]]
        edges += [(1, 3), (3, 6), (1, 6)]  # a triangle elsewhere
        log = BooleanTable(schema, [(1 << a) | (1 << b) for a, b in edges])
        problem = VisibilityProblem(log, schema.full, 4)
        solution = BruteForceSolver().solve(problem)
        assert solution.satisfied == 6  # C(4,2): the planted clique
        assert solution.keep_mask == sum(1 << v for v in clique)
