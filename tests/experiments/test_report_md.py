"""Tests for markdown rendering of archived results."""

import pytest

from repro.experiments import ExperimentResult
from repro.experiments.report_md import result_to_markdown, results_to_markdown


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        name="fig10",
        title="time vs size",
        x_name="queries",
        x_values=[100, 200],
        series={"ILP": [0.5, None], "MFI": [0.123456, 2_000_000.0]},
        notes=["ILP not attempted past 100"],
    )


class TestSection:
    def test_heading_and_table(self, result):
        text = result_to_markdown(result)
        assert text.startswith("## fig10 — time vs size")
        assert "| queries | ILP | MFI |" in text
        assert "| 100 | 0.5 | 0.1235 |" in text

    def test_none_rendered_as_dash(self, result):
        assert "| 200 | - |" in result_to_markdown(result)

    def test_scientific_notation_for_extremes(self, result):
        assert "2.00e+06" in result_to_markdown(result)

    def test_notes_italicised(self, result):
        assert "*ILP not attempted past 100*" in result_to_markdown(result)

    def test_heading_level(self, result):
        assert result_to_markdown(result, heading_level=3).startswith("###")


class TestDocument:
    def test_document_structure(self, result):
        text = results_to_markdown([result, result], title="Run 1")
        assert text.startswith("# Run 1")
        assert text.count("## fig10") == 2
        assert text.endswith("\n")

    def test_round_trip_from_json(self, result, tmp_path):
        from repro.experiments.record import load_results, save_results

        path = tmp_path / "run.json"
        save_results([result], path)
        text = results_to_markdown(load_results(path))
        assert "fig10" in text and "| 100 |" in text
