"""Tests for experiment result serialization."""

import json

import pytest

from repro.common.errors import ValidationError
from repro.experiments import ExperimentResult
from repro.experiments.record import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


@pytest.fixture
def result() -> ExperimentResult:
    return ExperimentResult(
        name="fig10",
        title="time vs size",
        x_name="queries",
        x_values=[100, 200],
        series={"ILP": [0.5, None], "MFI": [0.1, 0.2]},
        notes=["a note"],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.name == result.name
        assert restored.x_values == result.x_values
        assert restored.series == result.series
        assert restored.notes == result.notes

    def test_file_round_trip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([result, result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].series["ILP"] == [0.5, None]

    def test_none_survives_json(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([result], path)
        raw = json.loads(path.read_text())
        assert raw["results"][0]["series"]["ILP"][1] is None

    def test_text_rendering_after_reload(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([result], path)
        assert "fig10" in load_results(path)[0].to_text()


class TestValidation:
    def test_version_checked(self, result):
        payload = result_to_dict(result)
        payload["format_version"] = 99
        with pytest.raises(ValidationError):
            result_from_dict(payload)

    def test_missing_keys_rejected(self):
        with pytest.raises(ValidationError):
            result_from_dict({"format_version": 1, "name": "x"})

    def test_bad_top_level_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            load_results(path)


class TestCliJsonFlag:
    def test_json_output_written(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import __main__ as cli
        from repro.experiments.scale import ExperimentScale

        tiny = ExperimentScale(
            name="tiny", cars=100, cars_per_point=1, real_queries=20,
            synthetic_queries=30, log_sizes=(20,), attribute_counts=(8,),
            ilp_max_log=20, budgets=(2,), seed=1,
        )
        monkeypatch.setattr(
            cli.ExperimentScale, "by_name", classmethod(lambda cls, name: tiny)
        )
        out_path = tmp_path / "out.json"
        assert cli.main(["fig7", "--json", str(out_path)]) == 0
        loaded = load_results(out_path)
        assert loaded[0].name == "fig7"
