"""Tests for the experiment harness (scale presets, results, runners)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentScale,
    run_experiment,
)


class TestScale:
    def test_presets_by_name(self):
        for name in ("fast", "standard", "full"):
            assert ExperimentScale.by_name(name).name == name

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale.by_name("huge")

    def test_full_matches_paper_sizes(self):
        full = ExperimentScale.full()
        assert full.cars == 15_211
        assert full.cars_per_point == 100
        assert full.real_queries == 185
        assert full.synthetic_queries == 2_000
        assert full.ilp_max_log == 1_000
        assert 32 in full.attribute_counts

    def test_fast_is_smaller(self):
        fast, full = ExperimentScale.fast(), ExperimentScale.full()
        assert fast.cars < full.cars
        assert fast.cars_per_point < full.cars_per_point


class TestResult:
    def test_text_rendering(self):
        result = ExperimentResult(
            name="figX",
            title="demo",
            x_name="m",
            x_values=[1, 2],
            series={"A": [0.5, None]},
            notes=["hello"],
        )
        text = result.to_text()
        assert "figX" in text
        assert "note: hello" in text
        assert "-" in text  # the None point

    def test_series_of(self):
        result = ExperimentResult("f", "t", "x", [1], {"A": [2]})
        assert result.series_of("A") == [2]


@pytest.fixture(scope="module")
def tiny_scale() -> ExperimentScale:
    """Sub-second scale for harness tests."""
    return ExperimentScale(
        name="tiny",
        cars=200,
        cars_per_point=1,
        real_queries=40,
        synthetic_queries=60,
        log_sizes=(30, 60),
        attribute_counts=(8, 12),
        ilp_max_log=30,
        budgets=(2, 4),
        seed=1,
    )


class TestRunners:
    def test_registry_contains_all_figures(self):
        for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11"):
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    @pytest.mark.parametrize("name", list(EXPERIMENTS))
    def test_every_runner_produces_complete_series(self, name, tiny_scale):
        result = run_experiment(name, tiny_scale)
        assert isinstance(result, ExperimentResult)
        assert result.x_values
        for label, values in result.series.items():
            assert len(values) == len(result.x_values), label

    def test_fig6_has_all_five_algorithms(self, tiny_scale):
        result = run_experiment("fig6", tiny_scale)
        assert set(result.series) == {
            "ILP", "MaxFreqItemSets", "ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries",
        }

    def test_fig7_optimal_dominates_greedies(self, tiny_scale):
        result = run_experiment("fig7", tiny_scale)
        for label in ("ConsumeAttr", "ConsumeAttrCumul", "ConsumeQueries"):
            for greedy, optimal in zip(result.series[label], result.series["Optimal"]):
                assert greedy <= optimal + 1e-9

    def test_fig9_quality_monotone_in_budget(self, tiny_scale):
        result = run_experiment("fig9", tiny_scale)
        optimal = result.series["Optimal"]
        assert optimal == sorted(optimal)

    def test_fig10_ilp_missing_beyond_cap(self, tiny_scale):
        result = run_experiment("fig10", tiny_scale)
        assert result.series["ILP"][0] is not None
        assert result.series["ILP"][-1] is None  # 60 > ilp_max_log=30

    def test_fig11_covers_attribute_counts(self, tiny_scale):
        result = run_experiment("fig11", tiny_scale)
        assert result.x_values == [8, 12]
        assert all(value > 0 for value in result.series["MaxFreqItemSets"])

    def test_ablation_threshold_policies_all_reported(self, tiny_scale):
        result = run_experiment("ablation_threshold", tiny_scale)
        assert "adaptive-ladder" in result.x_values
        assert len(result.series["time_s"]) == len(result.x_values)

    def test_ablation_greedy_includes_extension(self, tiny_scale):
        result = run_experiment("ablation_greedy_quality", tiny_scale)
        assert "CoverageGreedy" in result.series


class TestCli:
    def test_list_option(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out

    def test_unknown_experiment_exit_code(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig99"]) == 2

    def test_runs_named_experiment(self, capsys, monkeypatch, tiny_scale):
        from repro.experiments import __main__ as cli

        monkeypatch.setattr(
            cli.ExperimentScale, "by_name", classmethod(lambda cls, name: tiny_scale)
        )
        assert cli.main(["fig11", "--scale", "fast"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
