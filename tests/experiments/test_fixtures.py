"""Tests for experiment fixtures (cached datasets, wide instances)."""

import pytest

from repro.experiments import ExperimentScale, fixtures


class TestCaching:
    def test_cars_dataset_cached(self):
        first = fixtures.cars_dataset(300, 42)
        second = fixtures.cars_dataset(300, 42)
        assert first is second  # lru-cached, not regenerated

    def test_logs_deterministic(self):
        a = fixtures.real_log(42, 50, 300)
        b = fixtures.real_log(42, 50, 300)
        assert list(a) == list(b)

    def test_synthetic_log_size(self):
        log = fixtures.synthetic_log(42, 77, 300)
        assert len(log) == 77


class TestSampleNewCars:
    def test_count_follows_scale(self):
        scale = ExperimentScale.fast()
        cars = fixtures.sample_new_cars(scale)
        assert len(cars) == scale.cars_per_point

    def test_override_count(self):
        scale = ExperimentScale.fast()
        assert len(fixtures.sample_new_cars(scale, count=7)) == 7

    def test_deterministic(self):
        scale = ExperimentScale.fast()
        assert fixtures.sample_new_cars(scale) == fixtures.sample_new_cars(scale)


class TestWideInstance:
    def test_shape(self):
        log, new_tuple = fixtures.wide_instance(20, 60, 1)
        assert log.schema.width == 20
        assert len(log) == 60
        assert 0 < new_tuple < (1 << 20)

    def test_tuple_density_near_half(self):
        log, new_tuple = fixtures.wide_instance(64, 10, 2)
        assert 16 <= new_tuple.bit_count() <= 48

    def test_deterministic_per_width(self):
        assert fixtures.wide_instance(24, 50, 3) is fixtures.wide_instance(24, 50, 3)

    def test_widths_differ(self):
        log_a, _ = fixtures.wide_instance(16, 50, 4)
        log_b, _ = fixtures.wide_instance(32, 50, 4)
        assert log_a.schema.width != log_b.schema.width
