"""Tier-1 smoke: the full durability loop at toy scale.

One scenario, end to end: stream queries into a durable store, checkpoint
with a warm cache, keep streaming, crash mid-record, recover, and solve —
the answer must equal the one a never-crashed process computes.
"""

from __future__ import annotations

import random

from repro.booldata.schema import Schema
from repro.core.registry import make_solver
from repro.runtime.faults import truncate_tail
from repro.store import (
    DurableStreamingLog,
    StoreConfig,
    recover,
    restore_cache_state,
)
from repro.stream.cache import SolveCache
from repro.stream.log import StreamingLog
from repro.store.wal import list_segments, segment_path


def test_write_crash_recover_solve_round_trip(tmp_path):
    schema = Schema.anonymous(8)
    rng = random.Random(99)
    traffic = [rng.getrandbits(8) or 1 for _ in range(120)]
    store_dir = tmp_path / "store"

    # -- write, checkpoint warm, keep writing -----------------------------------
    log = DurableStreamingLog(
        schema, store_dir, window_size=40,
        config=StoreConfig(fsync="never", snapshot_every=50),
    )
    cache = SolveCache(log)
    log.checkpoint_cache = cache
    for query in traffic[:100]:
        log.append(query)
    pre_crash = cache.solve(schema.full, 3, make_solver("ConsumeAttrCumul"))
    log.checkpoint(cache)
    for query in traffic[100:]:
        log.append(query)
    log.close()

    # -- crash: tear the last WAL record in half --------------------------------
    tail_segment = segment_path(store_dir, list_segments(store_dir)[-1])
    truncate_tail(tail_segment, 3)

    # -- recover and compare to a process that never crashed --------------------
    recovered, report = recover(store_dir)
    assert report.truncated and report.truncated_reason in (
        "torn_header", "torn_payload"
    )
    mirror = StreamingLog(schema, window_size=40, rows=traffic[:119])
    assert recovered.rows == mirror.rows
    assert recovered.epoch == mirror.epoch
    ours = recovered.index_answers().materialize()
    theirs = mirror.index_answers().materialize()
    assert ours.columns == theirs.columns

    # -- the recovered window solves like the live one --------------------------
    solver = make_solver("ConsumeAttrCumul")
    warm = SolveCache(recovered)
    restore_cache_state(warm, report.cache_state)
    fresh = warm.solve(schema.full, 3, solver)   # epoch moved on: a real solve
    from repro.core.problem import VisibilityProblem

    expected = solver.solve(VisibilityProblem(mirror.snapshot(), schema.full, 3))
    assert fresh.keep_mask == expected.keep_mask
    assert fresh.satisfied == expected.satisfied
    # the pre-crash solution is still reachable via the last-known-good path
    assert warm._latest[(schema.full, 3, "solver:" + solver.name)].keep_mask \
        == pre_crash.keep_mask

    # -- and the store keeps accepting writes -----------------------------------
    recovered.append(0b1)
    recovered.close()
