"""Snapshot and manifest files: framing, damage detection, pruning."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ValidationError
from repro.runtime.faults import flip_byte, truncate_tail
from repro.store.snapshot import (
    list_snapshots,
    load_manifest,
    load_snapshot,
    prune_snapshots,
    snapshot_epoch,
    snapshot_path,
    write_manifest,
    write_snapshot,
)

MANIFEST = {
    "schema": ["a", "b"],
    "window_size": None,
    "compact_threshold": 0.5,
}


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(tmp_path, MANIFEST)
        loaded = load_manifest(tmp_path)
        assert loaded["schema"] == ["a", "b"]
        assert loaded["format_version"] == 1

    def test_missing_is_an_error(self, tmp_path):
        with pytest.raises(ValidationError, match="no store manifest"):
            load_manifest(tmp_path)

    def test_unparseable_is_an_error(self, tmp_path):
        (tmp_path / "store.json").write_text("{nope")
        with pytest.raises(ValidationError, match="unreadable"):
            load_manifest(tmp_path)

    def test_wrong_version_is_an_error(self, tmp_path):
        (tmp_path / "store.json").write_text(
            json.dumps({**MANIFEST, "format_version": 99})
        )
        with pytest.raises(ValidationError, match="unsupported manifest version"):
            load_manifest(tmp_path)

    def test_missing_keys_are_an_error(self, tmp_path):
        (tmp_path / "store.json").write_text(
            json.dumps({"format_version": 1, "schema": ["a"]})
        )
        with pytest.raises(ValidationError, match="missing keys"):
            load_manifest(tmp_path)


def _payload(epoch):
    return {"format_version": 1, "epoch": epoch, "rows": ["0f"]}


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        path = write_snapshot(tmp_path, _payload(7), epoch=7, fsync=False)
        assert snapshot_epoch(path) == 7
        assert load_snapshot(path) == _payload(7)

    def test_flipped_byte_is_detected(self, tmp_path):
        path = write_snapshot(tmp_path, _payload(7), epoch=7, fsync=False)
        size = path.stat().st_size
        for offset in range(size):
            flip_byte(path, offset)
            with pytest.raises(ValidationError):
                load_snapshot(path)
            flip_byte(path, offset)  # restore
        assert load_snapshot(path)["epoch"] == 7

    def test_torn_snapshot_is_detected(self, tmp_path):
        path = write_snapshot(tmp_path, _payload(7), epoch=7, fsync=False)
        truncate_tail(path, 3)
        with pytest.raises(ValidationError, match="torn snapshot"):
            load_snapshot(path)

    def test_not_a_snapshot_file(self, tmp_path):
        path = tmp_path / "snap-000000000001.snap"
        path.write_bytes(b"hello world, definitely not framed")
        with pytest.raises(ValidationError, match="bad magic"):
            load_snapshot(path)

    def test_listing_is_newest_first(self, tmp_path):
        for epoch in (3, 11, 7):
            write_snapshot(tmp_path, _payload(epoch), epoch=epoch, fsync=False)
        (tmp_path / "snap-junk.snap").write_text("ignored")  # not a digit epoch
        assert [snapshot_epoch(p) for p in list_snapshots(tmp_path)] == [11, 7, 3]

    def test_prune_keeps_newest(self, tmp_path):
        for epoch in range(1, 6):
            write_snapshot(tmp_path, _payload(epoch), epoch=epoch, fsync=False)
        assert prune_snapshots(tmp_path, keep=2) == 3
        assert [snapshot_epoch(p) for p in list_snapshots(tmp_path)] == [5, 4]
        with pytest.raises(ValidationError):
            prune_snapshots(tmp_path, keep=0)

    def test_rewrite_same_epoch_replaces(self, tmp_path):
        write_snapshot(tmp_path, _payload(7), epoch=7, fsync=False)
        write_snapshot(tmp_path, {**_payload(7), "rows": []}, epoch=7, fsync=False)
        assert load_snapshot(snapshot_path(tmp_path, 7))["rows"] == []
        assert len(list_snapshots(tmp_path)) == 1
