"""SolveCache state rides snapshots: warm restarts serve paid-for solves."""

from __future__ import annotations

import random

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.core.registry import make_solver
from repro.runtime.harness import SolverHarness
from repro.store import (
    DurableStreamingLog,
    StoreConfig,
    export_cache_state,
    recover,
    restore_cache_state,
)
from repro.stream.cache import SolveCache

SCHEMA = Schema.anonymous(10)
CONFIG = StoreConfig(fsync="never")


def _rows(count, seed=29):
    rng = random.Random(seed)
    return [rng.getrandbits(SCHEMA.width) or 1 for _ in range(count)]


def _restart(tmp_path, prime):
    """Create a store, let ``prime(log, cache)`` warm the cache,
    checkpoint with the cache, close, recover.  Returns the recovered
    log and a fresh cache with the persisted state restored."""
    store_dir = tmp_path / "store"
    log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG, rows=_rows(50))
    cache = SolveCache(log, stale_while_revalidate=True)
    prime(log, cache)
    log.checkpoint(cache)
    log.close()
    recovered, report = recover(store_dir, config=CONFIG)
    assert report.cache_state is not None
    warm = SolveCache(recovered, stale_while_revalidate=True)
    restored = restore_cache_state(warm, report.cache_state)
    return recovered, warm, restored


class TestWarmRestart:
    def test_solution_entries_hit_after_clean_restart(self, tmp_path):
        solver = make_solver("ConsumeAttrCumul")
        cold = {}

        def prime(log, cache):
            cold["solution"] = cache.solve(SCHEMA.full, 3, solver)

        recovered, warm, restored = _restart(tmp_path, prime)
        assert restored == 1
        hit = warm.solve(SCHEMA.full, 3, solver)
        assert warm.hits == 1 and warm.misses == 0
        assert hit.keep_mask == cold["solution"].keep_mask
        assert hit.satisfied == cold["solution"].satisfied
        assert hit.stats["restored"] is True
        recovered.close()

    def test_outcome_entries_hit_after_clean_restart(self, tmp_path):
        harness = SolverHarness(["ConsumeAttrCumul"])

        def prime(log, cache):
            outcome = cache.run(SCHEMA.full, 3, harness)
            assert outcome.status == "exact"

        recovered, warm, restored = _restart(tmp_path, prime)
        assert restored == 1
        outcome = warm.run(SCHEMA.full, 3, harness)
        assert warm.hits == 1
        assert outcome.status == "exact"
        assert outcome.solution.stats["restored"] is True
        recovered.close()

    def test_round_trip_of_multiple_keys(self, tmp_path):
        solver = make_solver("ConsumeAttrCumul")

        def prime(log, cache):
            for budget in (1, 2, 3):
                cache.solve(SCHEMA.full, budget, solver)

        recovered, warm, restored = _restart(tmp_path, prime)
        assert restored == 3
        for budget in (1, 2, 3):
            warm.solve(SCHEMA.full, budget, solver)
        assert warm.hits == 3 and warm.misses == 0
        recovered.close()


class TestEpochDiscipline:
    def test_entries_dropped_when_epochs_diverge(self, tmp_path):
        """State exported at epoch E restores zero entries into a log
        that has moved on — but the last-known-good masks survive."""
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG, rows=_rows(50))
        cache = SolveCache(log)
        cache.solve(SCHEMA.full, 3, make_solver("ConsumeAttrCumul"))
        state = export_cache_state(cache)
        log.append(0b1)  # epoch moves past the exported state
        stale_cache = SolveCache(log)
        assert restore_cache_state(stale_cache, state) == 0
        assert len(stale_cache) == 0
        assert len(stale_cache._latest) == 1
        log.close()

    def test_stale_while_revalidate_serves_restored_latest(self, tmp_path):
        """After a restart *plus* new traffic, a failing refresh still
        answers from the restored last-known-good mask."""
        harness = SolverHarness(["ConsumeAttrCumul"])
        cold = {}

        def prime(log, cache):
            cold["outcome"] = cache.run(SCHEMA.full, 3, harness)

        recovered, warm, _ = _restart(tmp_path, prime)
        recovered.append(0b1)  # epoch diverges: the entry is unreachable
        from repro.runtime.harness import RunOutcome

        failing = SolverHarness(["ConsumeAttrCumul"])
        failing.run = lambda problem, deadline_ms=...: RunOutcome(
            status="failed", solution=None, attempts=(),
            elapsed_s=0.0, deadline_s=None,
        )
        served = warm.run(SCHEMA.full, 3, failing)
        assert served.status == "stale"
        assert served.solution.keep_mask == cold["outcome"].solution.keep_mask
        recovered.close()


class TestStateFormat:
    def test_failed_outcomes_are_not_persisted(self, tmp_path):
        from repro.core.base import Solver

        class Boom(Solver):
            name = "Boom"
            optimal = False

            def _solve(self, problem):
                raise RuntimeError("boom")

        store_dir = tmp_path / "store"
        log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG, rows=_rows(10))
        cache = SolveCache(log)
        outcome = cache.run(SCHEMA.full, 3, SolverHarness([Boom()]))
        assert outcome.status == "failed"
        state = export_cache_state(cache)
        assert state["entries"] == [] and state["latest"] == []
        log.close()

    def test_bad_state_version_is_rejected(self, tmp_path):
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG, rows=_rows(5))
        cache = SolveCache(log)
        with pytest.raises(ValidationError, match="cache state version"):
            restore_cache_state(cache, {"state_version": 99})
        with pytest.raises(ValidationError, match="cache state version"):
            restore_cache_state(cache, {"entries": []})
        log.close()

    def test_state_is_json_serializable(self, tmp_path):
        import json

        store_dir = tmp_path / "store"
        log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG, rows=_rows(30))
        cache = SolveCache(log)
        cache.solve(SCHEMA.full, 2, make_solver("ConsumeAttrCumul"))
        cache.run(SCHEMA.full, 3, SolverHarness(["ConsumeAttrCumul"]))
        state = export_cache_state(cache)
        round_tripped = json.loads(json.dumps(state))
        fresh = SolveCache(log)
        assert restore_cache_state(fresh, round_tripped) == 2
        log.close()
