"""Cross-kernel durability: a store written under one bitmap kernel
recovers under any other, bit-for-bit.

Snapshots serialize the ``DeltaVerticalIndex`` through the
kernel-agnostic int-column interchange of the ``ColumnStore`` contract,
and WAL records are plain masks — so the on-disk format carries no
kernel fingerprint at all.  These tests prove it for every available
kernel pair, over both recovery paths (snapshot + tail, and
genesis-only replay).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.booldata import kernels
from repro.booldata.schema import Schema
from repro.store import DurableStreamingLog, StoreConfig, recover

SCHEMA = Schema([f"a{i}" for i in range(16)])
CONFIG = StoreConfig(fsync="never")

PAIRS = sorted(itertools.product(kernels.available_kernels(), repeat=2))


def _write(tmp_path, write_kernel, checkpoint):
    rng = random.Random(41)
    store_dir = tmp_path / "store"
    log = DurableStreamingLog(
        SCHEMA, store_dir, window_size=30, kernel=write_kernel, config=CONFIG
    )
    for index in range(120):
        log.append(rng.getrandbits(SCHEMA.width))
        if rng.random() < 0.1 and len(log):
            log.retire(rng.randrange(1, len(log) + 1))
        if checkpoint and index == 70:
            log.checkpoint()
    reference = log.index_answers().materialize()
    rows, epoch = log.rows, log.epoch
    log.close()
    return store_dir, reference, rows, epoch


@pytest.mark.parametrize("write_kernel,read_kernel", PAIRS)
def test_snapshot_recovery_crosses_kernels(tmp_path, write_kernel, read_kernel):
    store_dir, reference, rows, epoch = _write(tmp_path, write_kernel, checkpoint=True)
    log, report = recover(store_dir, kernel=read_kernel, config=CONFIG)
    assert report.source == "snapshot"
    assert log.kernel == read_kernel
    recovered = log.index_answers().materialize()
    assert recovered.kernel == read_kernel
    assert recovered.columns == reference.columns
    assert recovered.num_rows == reference.num_rows
    assert recovered.all_rows == reference.all_rows
    assert recovered.used_attributes == reference.used_attributes
    assert log.rows == rows and log.epoch == epoch
    log.close()


@pytest.mark.parametrize("write_kernel,read_kernel", PAIRS)
def test_genesis_recovery_crosses_kernels(tmp_path, write_kernel, read_kernel):
    store_dir, reference, rows, epoch = _write(tmp_path, write_kernel, checkpoint=False)
    log, report = recover(store_dir, kernel=read_kernel, config=CONFIG)
    assert report.source == "genesis"
    recovered = log.index_answers().materialize()
    assert recovered.columns == reference.columns
    assert recovered.num_rows == reference.num_rows
    assert log.rows == rows and log.epoch == epoch
    log.close()


def test_manifest_kernel_is_the_default(tmp_path):
    """Without an override, recovery reopens on the kernel the store was
    created with."""
    preferred = kernels.available_kernels()[-1]
    store_dir = tmp_path / "store"
    log = DurableStreamingLog(SCHEMA, store_dir, kernel=preferred, config=CONFIG)
    log.append(0b101)
    log.close()
    recovered, _ = recover(store_dir, config=CONFIG)
    assert recovered.kernel == preferred
    recovered.close()
