"""WriteAheadLog: segment rotation, fsync policies, scanning, pruning."""

from __future__ import annotations

import pytest

from repro.common.errors import ValidationError
from repro.store import records as rec
from repro.store.wal import (
    FIRST_SEGMENT,
    WalPosition,
    WriteAheadLog,
    list_segments,
    scan_wal,
    segment_path,
)


def _fill(wal: WriteAheadLog, count: int) -> list[WalPosition]:
    return [
        wal.append(rec.encode_append(i + 1), rec.APPEND) for i in range(count)
    ]


class TestWriting:
    def test_positions_are_monotonic_and_scannable(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        positions = _fill(wal, 20)
        assert positions == sorted(positions)
        wal.close()
        scan = scan_wal(tmp_path)
        assert scan.stop is None
        assert [record.value for _, record in scan.records] == list(range(1, 21))

    def test_rotation_keeps_records_whole(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64, fsync="never")
        _fill(wal, 40)
        wal.close()
        segments = list_segments(tmp_path)
        assert segments[0] == FIRST_SEGMENT and len(segments) > 1
        assert segments == list(range(FIRST_SEGMENT, FIRST_SEGMENT + len(segments)))
        assert wal.rotations == len(segments) - 1
        # no record spans a segment: every segment decodes cleanly alone
        for segment in segments:
            data = segment_path(tmp_path, segment).read_bytes()
            _, stop = rec.scan_records(data)
            assert stop is None
        scan = scan_wal(tmp_path)
        assert [record.value for _, record in scan.records] == list(range(1, 41))

    def test_reopen_appends_after_existing_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        _fill(wal, 3)
        wal.close()
        again = WriteAheadLog(tmp_path, fsync="never")
        again.append(rec.encode_append(99), rec.APPEND)
        again.close()
        scan = scan_wal(tmp_path)
        assert [record.value for _, record in scan.records] == [1, 2, 3, 99]

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(ValidationError):
            WriteAheadLog(tmp_path, segment_bytes=8)
        with pytest.raises(ValidationError):
            WriteAheadLog(tmp_path, fsync_interval=0)


class TestFsyncPolicies:
    def test_always_syncs_every_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="always")
        _fill(wal, 5)
        assert wal.fsyncs == 5
        wal.close()

    def test_interval_batches(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="interval", fsync_interval=4)
        _fill(wal, 9)
        assert wal.fsyncs == 2  # after records 4 and 8
        wal.close()
        assert wal.fsyncs == 3  # close drains the remainder

    def test_never_syncs_only_on_barrier(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        _fill(wal, 8)
        assert wal.fsyncs == 0
        wal.sync()  # the checkpoint barrier overrides the policy
        assert wal.fsyncs == 1
        wal.close()
        assert wal.fsyncs == 1


class TestScanAndPrune:
    def test_scan_from_position_skips_history(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        positions = _fill(wal, 10)
        wal.close()
        scan = scan_wal(tmp_path, positions[6])
        assert [record.value for _, record in scan.records] == [7, 8, 9, 10]

    def test_scan_position_beyond_segment_is_an_error(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        _fill(wal, 2)
        wal.close()
        end = wal.position()
        with pytest.raises(ValidationError, match="history is incomplete"):
            scan_wal(tmp_path, WalPosition(end.segment, end.offset + 1000))

    def test_prune_below_never_removes_current(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64, fsync="never")
        _fill(wal, 40)
        current = wal.position().segment
        removed = wal.prune_below(current + 5)
        assert removed == current - FIRST_SEGMENT
        assert list_segments(tmp_path) == [current]
        wal.close()

    def test_scan_stops_at_corrupt_segment_boundary(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64, fsync="never")
        _fill(wal, 40)
        wal.close()
        segments = list_segments(tmp_path)
        victim = segments[len(segments) // 2]
        path = segment_path(tmp_path, victim)
        damaged = bytearray(path.read_bytes())
        damaged[3] ^= 0xFF
        path.write_bytes(bytes(damaged))
        scan = scan_wal(tmp_path)
        assert scan.stop is not None
        assert scan.stop_segment == victim
        # records from segments before the damage all survived
        assert all(segment < victim for segment, _ in scan.records)
