"""WAL record framing: round trips, torn tails, corruption detection."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ValidationError
from repro.store import records as rec


def _encode_ops(ops):
    """ops: list of ("append", mask) / ("retire", count) / ("compact",)."""
    chunks = []
    for op in ops:
        if op[0] == "append":
            chunks.append(rec.encode_append(op[1]))
        elif op[0] == "retire":
            chunks.append(rec.encode_retire(op[1]))
        else:
            chunks.append(rec.encode_compact())
    return chunks


OPS = [
    ("append", 0),
    ("append", 0b1011),
    ("append", (1 << 200) | 5),   # masks wider than any machine word
    ("retire", 1),
    ("compact",),
    ("append", 0xFFFF_FFFF),
    ("retire", 3),
]


class TestRoundTrip:
    def test_sequence_decodes_exactly(self):
        data = b"".join(_encode_ops(OPS))
        records, stop = rec.scan_records(data)
        assert stop is None
        assert [(r.type, r.value) for r in records] == [
            ("append", 0),
            ("append", 0b1011),
            ("append", (1 << 200) | 5),
            ("retire", 1),
            ("compact", 0),
            ("append", 0xFFFF_FFFF),
            ("retire", 3),
        ]
        # offsets and sizes tile the buffer exactly
        position = 0
        for record in records:
            assert record.offset == position
            position += record.size
        assert position == len(data)

    def test_base_offset_shifts_reported_offsets(self):
        data = b"".join(_encode_ops(OPS[:2]))
        records, _ = rec.scan_records(data, base_offset=1000)
        assert records[0].offset == 1000

    def test_empty_buffer_is_clean(self):
        assert rec.scan_records(b"") == ([], None)

    def test_encode_validation(self):
        with pytest.raises(ValidationError):
            rec.encode_append(-1)
        with pytest.raises(ValidationError):
            rec.encode_retire(0)
        with pytest.raises(ValidationError):
            rec.encode_retire(1 << 32)
        with pytest.raises(ValidationError):
            rec.encode_record("banana", b"")


class TestTornTails:
    def test_truncation_at_every_byte(self):
        """The core crash property: cutting the buffer anywhere yields
        the records fully on disk, a correct stop classification, and
        never an exception."""
        chunks = _encode_ops(OPS)
        data = b"".join(chunks)
        boundaries = {0}
        position = 0
        for chunk in chunks:
            position += len(chunk)
            boundaries.add(position)
        for cut in range(len(data) + 1):
            records, stop = rec.scan_records(data[:cut])
            complete = sum(1 for b in sorted(boundaries) if 0 < b <= cut)
            assert len(records) == complete
            if cut in boundaries:
                assert stop is None
            else:
                assert stop is not None and stop.torn
                # the stop points at the boundary the bad record started on
                assert stop.offset == max(b for b in boundaries if b <= cut)


class TestCorruption:
    def test_flipped_byte_never_passes(self):
        """Flipping any single byte either truncates the scan at (or
        before) the damaged record or leaves earlier records intact —
        it never yields the original full decode."""
        chunks = _encode_ops(OPS)
        data = b"".join(chunks)
        rng = random.Random(5)
        for _ in range(200):
            index = rng.randrange(len(data))
            damaged = bytearray(data)
            damaged[index] ^= 1 << rng.randrange(8)
            records, stop = rec.scan_records(bytes(damaged))
            decoded = [(r.type, r.value) for r in records]
            original = [
                ("append", 0), ("append", 0b1011), ("append", (1 << 200) | 5),
                ("retire", 1), ("compact", 0), ("append", 0xFFFF_FFFF),
                ("retire", 3),
            ]
            assert decoded != original or stop is not None
            # every record before the stop is one of the originals
            for record, expected in zip(records, original):
                if stop is not None and record.offset < stop.offset:
                    assert (record.type, record.value) == expected

    def test_unknown_type_is_corruption(self):
        body = bytes([99]) + b"x"
        import struct
        import zlib

        framed = struct.pack("<II", len(body), zlib.crc32(body)) + body
        records, stop = rec.scan_records(framed)
        assert records == []
        assert stop is not None and stop.reason == "bad_type" and not stop.torn

    def test_oversized_length_is_corruption(self):
        import struct

        framed = struct.pack("<II", rec.MAX_BODY_BYTES + 1, 0) + b"zz"
        records, stop = rec.scan_records(framed)
        assert stop is not None and stop.reason == "bad_length"

    def test_malformed_retire_payload(self):
        import struct
        import zlib

        body = bytes([2]) + b"\x01"  # retire needs a u32, got one byte
        framed = struct.pack("<II", len(body), zlib.crc32(body)) + body
        _, stop = rec.scan_records(framed)
        assert stop is not None and stop.reason == "bad_payload"

    def test_compact_with_payload_is_corruption(self):
        import struct
        import zlib

        body = bytes([3]) + b"q"
        framed = struct.pack("<II", len(body), zlib.crc32(body)) + body
        _, stop = rec.scan_records(framed)
        assert stop is not None and stop.reason == "bad_payload"
