"""Crash-recovery property suite: the store survives a crash anywhere.

The central property (the acceptance bar of the durability work): cut
the write-ahead log at *every* record boundary — and in between — and
recovery restores exactly the state of the mutations wholly on disk,
bit-for-bit in the vertical index.  Fault shapes covered: clean kills,
torn writes (via the injected crashing writer and raw truncation),
flipped bytes, damaged snapshots, missing segments, and damage beyond
recovery.
"""

from __future__ import annotations

import random
import shutil

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.runtime.faults import InjectedCrash, crash_after_bytes, flip_byte
from repro.store import DurableStreamingLog, StoreConfig, recover
from repro.store.snapshot import list_snapshots
from repro.store.wal import FIRST_SEGMENT, WalPosition, list_segments, segment_path
from repro.stream.log import StreamingLog

SCHEMA = Schema([f"a{i}" for i in range(10)])
CONFIG = StoreConfig(fsync="never")


def _ops(count, seed):
    """A deterministic mixed mutation script."""
    rng = random.Random(seed)
    live = 0
    ops = []
    for _ in range(count):
        move = rng.random()
        if move < 0.75 or live == 0:
            ops.append(("append", rng.getrandbits(SCHEMA.width)))
            live += 1
        elif move < 0.95:
            count_retired = rng.randrange(1, live + 1)
            ops.append(("retire", count_retired))
            live -= count_retired
        else:
            ops.append(("compact",))
    return ops


def _apply(log, op):
    if op[0] == "append":
        log.append(op[1])
    elif op[0] == "retire":
        log.retire(op[1])
    else:
        log.compact()


def _mirror(ops, window_size=None):
    """The reference state: a plain in-memory log after ``ops``."""
    plain = StreamingLog(SCHEMA, window_size=window_size)
    for op in ops:
        _apply(plain, op)
    return plain


def _assert_state_equals(recovered, plain):
    assert recovered.rows == plain.rows
    assert recovered.epoch == plain.epoch
    ours = recovered.index_answers().materialize()
    theirs = plain.index_answers().materialize()
    assert ours.columns == theirs.columns
    assert ours.num_rows == theirs.num_rows


def _write_store(tmp_path, ops, window_size=None, checkpoint_at=None):
    """Run ``ops`` against a fresh store; returns (dir, boundary positions).

    ``boundaries[k]`` is the WAL position once the first ``k`` ops are
    fully on disk — the byte address a crash lands on between ops.
    """
    store_dir = tmp_path / "store"
    log = DurableStreamingLog(
        SCHEMA, store_dir, window_size=window_size, config=CONFIG
    )
    boundaries = [log.wal_position()]
    for index, op in enumerate(ops):
        _apply(log, op)
        if checkpoint_at is not None and index + 1 == checkpoint_at:
            log.checkpoint()
        boundaries.append(log.wal_position())
    log.close()
    return store_dir, boundaries


def _cut(source_dir, target_dir, position: WalPosition):
    """Copy the store, then chop its WAL at an exact byte position."""
    shutil.copytree(source_dir, target_dir)
    for segment in list_segments(target_dir):
        path = segment_path(target_dir, segment)
        if segment > position.segment:
            path.unlink()
        elif segment == position.segment:
            with path.open("r+b") as handle:
                handle.truncate(position.offset)


class TestCrashAtEveryBoundary:
    def test_genesis_replay_restores_every_prefix(self, tmp_path):
        ops = _ops(60, seed=3)
        store_dir, boundaries = _write_store(tmp_path, ops)
        for k, position in enumerate(boundaries):
            crashed = tmp_path / f"crash-{k}"
            _cut(store_dir, crashed, position)
            log, report = recover(crashed, config=CONFIG)
            assert report.source == "genesis"
            assert not report.truncated
            _assert_state_equals(log, _mirror(ops[:k]))
            log.close()

    def test_snapshot_plus_tail_restores_every_prefix(self, tmp_path):
        """Same property with a checkpoint in the middle: crashes after
        it recover via the snapshot, crashes before it fall back to
        genesis (single segment, so the full history is still there)."""
        ops = _ops(50, seed=11)
        store_dir, boundaries = _write_store(
            tmp_path, ops, window_size=16, checkpoint_at=25
        )
        for k, position in enumerate(boundaries):
            crashed = tmp_path / f"crash-{k}"
            _cut(store_dir, crashed, position)
            log, report = recover(crashed, config=CONFIG)
            if k >= 25:
                assert report.source == "snapshot"
                assert report.snapshot_epoch is not None
            else:
                # the snapshot's WAL position is beyond the cut: skipped
                assert report.source == "genesis"
                assert report.snapshots_skipped == 1
            _assert_state_equals(log, _mirror(ops[:k], window_size=16))
            log.close()

    def test_mid_record_cut_truncates_to_the_boundary(self, tmp_path):
        ops = [("append", q) for q in range(1, 31)]
        store_dir, boundaries = _write_store(tmp_path, ops)
        rng = random.Random(23)
        cases = 0
        for k in range(len(ops)):
            start, end = boundaries[k].offset, boundaries[k + 1].offset
            if end - start < 2:
                continue
            cut = WalPosition(
                boundaries[k].segment, rng.randrange(start + 1, end)
            )
            crashed = tmp_path / f"torn-{k}"
            _cut(store_dir, crashed, cut)
            log, report = recover(crashed, config=CONFIG)
            assert report.truncated and report.truncated_reason in (
                "torn_header", "torn_payload"
            )
            assert report.truncated_bytes == cut.offset - start
            _assert_state_equals(log, _mirror(ops[:k]))
            log.close()
            # the truncation is physical: a second recovery is clean
            log, report = recover(crashed, config=CONFIG)
            assert not report.truncated
            _assert_state_equals(log, _mirror(ops[:k]))
            log.close()
            cases += 1
        assert cases >= 20


class TestInjectedCrashes:
    def test_torn_write_recovers_to_acknowledged_state(self, tmp_path):
        """Kill the process mid-``write`` at an arbitrary byte budget:
        recovery lands on exactly the acknowledged mutations."""
        for budget in (0, 1, 7, 40, 100, 201):
            store_dir = tmp_path / f"store-{budget}"
            log = DurableStreamingLog(
                SCHEMA, store_dir, config=CONFIG,
                wrap_writer=crash_after_bytes(budget),
            )
            acknowledged = []
            with pytest.raises(InjectedCrash):
                for query in range(1, 1000):
                    log.append(query)
                    acknowledged.append(("append", query))
            recovered, report = recover(store_dir, config=CONFIG)
            _assert_state_equals(recovered, _mirror(acknowledged))
            recovered.close()

    def test_flipped_byte_truncates_from_the_damage(self, tmp_path):
        ops = [("append", q) for q in range(1, 41)]
        store_dir, boundaries = _write_store(tmp_path, ops)
        victim = 12
        flip_byte(segment_path(store_dir, FIRST_SEGMENT), boundaries[victim].offset + 4)
        log, report = recover(store_dir, config=CONFIG)
        assert report.truncated
        assert report.truncated_reason in ("crc_mismatch", "bad_length", "bad_type")
        _assert_state_equals(log, _mirror(ops[:victim]))
        log.close()


class TestSnapshotFallback:
    def _store_with_two_snapshots(self, tmp_path):
        ops = _ops(60, seed=7)
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(
            SCHEMA, store_dir, config=StoreConfig(fsync="never", keep_snapshots=2)
        )
        for index, op in enumerate(ops):
            _apply(log, op)
            if index + 1 in (30, 50):
                log.checkpoint()
        log.close()
        return store_dir, ops

    def test_damaged_newest_falls_back_to_older(self, tmp_path):
        store_dir, ops = self._store_with_two_snapshots(tmp_path)
        newest, older = list_snapshots(store_dir)[:2]
        flip_byte(newest, -3)
        log, report = recover(store_dir, config=CONFIG)
        assert report.source == "snapshot"
        assert report.snapshot_path == str(older)
        assert report.snapshots_skipped == 1
        assert "checksum" in report.skipped_detail[0]
        _assert_state_equals(log, _mirror(ops))
        log.close()

    def test_all_snapshots_damaged_falls_back_to_genesis(self, tmp_path):
        store_dir, ops = self._store_with_two_snapshots(tmp_path)
        for snapshot in list_snapshots(store_dir):
            flip_byte(snapshot, -3)
        log, report = recover(store_dir, config=CONFIG)
        assert report.source == "genesis"
        assert report.snapshots_skipped == 2
        _assert_state_equals(log, _mirror(ops))
        log.close()


class TestBeyondRecovery:
    def test_no_manifest(self, tmp_path):
        with pytest.raises(ValidationError, match="no store manifest"):
            recover(tmp_path / "nothing")

    def test_damaged_snapshots_and_missing_first_segment(self, tmp_path):
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(
            SCHEMA, store_dir, config=StoreConfig(fsync="never", segment_bytes=64)
        )
        for query in range(200):
            log.append(query % (1 << SCHEMA.width))
        log.checkpoint()
        log.close()
        for snapshot in list_snapshots(store_dir):
            flip_byte(snapshot, -1)
        segments = list_segments(store_dir)
        if segments[0] == FIRST_SEGMENT:
            segment_path(store_dir, FIRST_SEGMENT).unlink()
        with pytest.raises(ValidationError, match="beyond recovery"):
            recover(store_dir, config=CONFIG)

    def test_hole_in_the_middle_of_the_wal(self, tmp_path):
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(
            SCHEMA, store_dir, config=StoreConfig(fsync="never", segment_bytes=64)
        )
        for query in range(200):
            log.append(query % (1 << SCHEMA.width))
        log.close()
        segments = list_segments(store_dir)
        assert len(segments) >= 3
        segment_path(store_dir, segments[len(segments) // 2]).unlink()
        with pytest.raises(ValidationError, match="beyond recovery"):
            recover(store_dir, config=CONFIG)


class TestFreshAndReport:
    def test_manifest_only_store_recovers_fresh(self, tmp_path):
        store_dir = tmp_path / "store"
        log = DurableStreamingLog(SCHEMA, store_dir, config=CONFIG)
        log.close()
        segment_path(store_dir, FIRST_SEGMENT).unlink()  # empty, never written
        recovered, report = recover(store_dir, config=CONFIG)
        assert report.source == "fresh"
        assert report.records_replayed == 0 and report.epoch == 0
        recovered.append(5)
        recovered.close()

    def test_recovered_log_keeps_accepting_writes(self, tmp_path):
        ops = [("append", q) for q in range(1, 21)]
        store_dir, _ = _write_store(tmp_path, ops)
        log, _ = recover(store_dir, config=CONFIG)
        log.append(99)
        log.close()
        again, report = recover(store_dir, config=CONFIG)
        assert report.records_replayed == 21
        _assert_state_equals(again, _mirror(ops + [("append", 99)]))
        again.close()

    def test_report_to_dict_is_json_ready(self, tmp_path):
        import json

        ops = [("append", 3)]
        store_dir, _ = _write_store(tmp_path, ops)
        log, report = recover(store_dir, config=CONFIG)
        log.close()
        payload = report.to_dict()
        json.dumps(payload)  # no exotic types
        assert payload["source"] == "genesis"
        assert payload["records_replayed"] == 1
        assert payload["live_rows"] == 1
        assert payload["cache_restorable"] is False
