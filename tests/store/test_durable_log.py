"""DurableStreamingLog mirrors StreamingLog exactly while persisting."""

from __future__ import annotations

import random

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.store import DurableStreamingLog, StoreConfig
from repro.store.snapshot import list_snapshots, load_snapshot
from repro.store.wal import list_segments

SCHEMA = Schema([f"a{i}" for i in range(12)])


def _mirror_check(durable, plain):
    assert durable.rows == plain.rows
    assert durable.epoch == plain.epoch
    assert len(durable) == len(plain)
    durable_index = durable.index_answers().materialize()
    plain_index = plain.index_answers().materialize()
    assert durable_index.columns == plain_index.columns
    assert durable_index.num_rows == plain_index.num_rows


def test_random_ops_mirror_streaming_log(tmp_path):
    """The property at the heart of the design: a durable log behaves
    exactly like a plain one on every observable surface, for any
    interleaving of appends / retires / compactions."""
    from repro.stream.log import StreamingLog

    rng = random.Random(17)
    durable = DurableStreamingLog(
        SCHEMA, tmp_path, window_size=40, compact_threshold=0.4,
        config=StoreConfig(fsync="never"),
    )
    plain = StreamingLog(SCHEMA, window_size=40, compact_threshold=0.4)
    for _ in range(300):
        move = rng.random()
        if move < 0.7 or len(durable) == 0:
            query = rng.getrandbits(SCHEMA.width)
            assert durable.append(query) == plain.append(query)
        elif move < 0.95:
            count = rng.randrange(0, len(durable) + 1)
            assert durable.retire(count) == plain.retire(count)
        else:
            assert durable.compact() == plain.compact()
        _mirror_check(durable, plain)
    durable.close()


def test_refuses_directory_with_existing_store(tmp_path):
    log = DurableStreamingLog(SCHEMA, tmp_path, config=StoreConfig(fsync="never"))
    log.append(3)
    log.close()
    with pytest.raises(ValidationError, match="already contains a store"):
        DurableStreamingLog(SCHEMA, tmp_path)


def test_invalid_mutations_never_reach_the_wal(tmp_path):
    log = DurableStreamingLog(SCHEMA, tmp_path, config=StoreConfig(fsync="never"))
    log.append(1)
    written = log.wal.records_written
    with pytest.raises(ValidationError):
        log.append(1 << SCHEMA.width)  # mask wider than the schema
    with pytest.raises(ValidationError):
        log.retire(5)  # more than the window holds
    with pytest.raises(ValidationError):
        log.retire(-1)
    assert log.wal.records_written == written
    assert log.retire(0) == []  # no-op: nothing logged either
    assert log.wal.records_written == written
    log.close()


def test_checkpoint_prunes_snapshots_and_segments(tmp_path):
    config = StoreConfig(fsync="never", segment_bytes=64, keep_snapshots=2)
    log = DurableStreamingLog(SCHEMA, tmp_path, window_size=8, config=config)
    paths = []
    for round_index in range(4):
        for _ in range(20):
            log.append(random.Random(round_index).getrandbits(SCHEMA.width))
        paths.append(log.checkpoint())
    assert list_snapshots(tmp_path) == [paths[3], paths[2]]
    # WAL segments older than the oldest kept snapshot were pruned
    floor = load_snapshot(paths[2])["wal"]["segment"]
    assert min(list_segments(tmp_path)) >= min(floor, log.wal.position().segment)
    assert log.last_snapshot() == paths[3]
    log.close()


def test_snapshot_every_auto_checkpoints(tmp_path):
    config = StoreConfig(fsync="never", snapshot_every=10, keep_snapshots=8)
    log = DurableStreamingLog(SCHEMA, tmp_path, config=config)
    for query in range(25):
        log.append(query)
    epochs = sorted(
        load_snapshot(path)["epoch"] for path in list_snapshots(tmp_path)
    )
    assert epochs == [10, 20]
    log.close()


def test_context_manager_closes_wal(tmp_path):
    with DurableStreamingLog(
        SCHEMA, tmp_path, config=StoreConfig(fsync="never")
    ) as log:
        log.append(7)
    assert log.wal.closed


def test_store_config_validation():
    with pytest.raises(ValidationError):
        StoreConfig(fsync="lazily")
    with pytest.raises(ValidationError):
        StoreConfig(segment_bytes=1)
    with pytest.raises(ValidationError):
        StoreConfig(fsync_interval=0)
    with pytest.raises(ValidationError):
        StoreConfig(snapshot_every=0)
    with pytest.raises(ValidationError):
        StoreConfig(keep_snapshots=0)
