"""Tests for BooleanTable."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(4)


class TestConstruction:
    def test_from_masks(self, schema):
        table = BooleanTable(schema, [0b0101, 0b0011])
        assert len(table) == 2
        assert table[0] == 0b0101

    def test_from_bit_rows(self, schema):
        table = BooleanTable.from_bit_rows(schema, [[1, 0, 1, 0]])
        assert table[0] == 0b0101

    def test_from_name_rows(self, schema):
        table = BooleanTable.from_name_rows(schema, [["a0", "a2"]])
        assert table[0] == 0b0101

    def test_out_of_range_row_rejected(self, schema):
        with pytest.raises(ValidationError):
            BooleanTable(schema, [0b10000])

    def test_append_and_extend(self, schema):
        table = BooleanTable(schema)
        table.append(0b1)
        table.extend([0b10, 0b11])
        assert list(table) == [0b1, 0b10, 0b11]


class TestStatistics:
    def test_attribute_frequencies(self, schema):
        table = BooleanTable(schema, [0b0011, 0b0001, 0b1000])
        assert table.attribute_frequencies() == [2, 1, 0, 1]

    def test_attribute_frequencies_empty(self, schema):
        assert BooleanTable(schema).attribute_frequencies() == [0, 0, 0, 0]

    def test_density(self, schema):
        table = BooleanTable(schema, [0b1111, 0b0000])
        assert table.density() == 0.5

    def test_density_empty(self, schema):
        assert BooleanTable(schema).density() == 0.0

    def test_row_sizes(self, schema):
        table = BooleanTable(schema, [0b0111, 0b0001])
        assert table.row_sizes() == [3, 1]

    @given(st.lists(st.integers(0, 15), max_size=30))
    def test_frequencies_sum_to_total_ones(self, rows):
        table = BooleanTable(Schema.anonymous(4), rows)
        assert sum(table.attribute_frequencies()) == sum(r.bit_count() for r in rows)


class TestTransforms:
    def test_filtered(self, schema):
        table = BooleanTable(schema, [0b0001, 0b0011, 0b0111])
        small = table.filtered(lambda row: row.bit_count() <= 2)
        assert list(small) == [0b0001, 0b0011]

    def test_projected(self):
        schema = Schema(["a", "b", "c"])
        table = BooleanTable.from_name_rows(schema, [["a", "c"], ["b"]])
        projected = table.projected(["c", "a"])
        assert projected.schema.names == ("c", "a")
        assert projected.schema.names_of(projected[0]) == ["c", "a"]
        assert projected[1] == 0

    def test_sample(self, schema):
        table = BooleanTable(schema, list(range(10)))
        sample = table.sample(4, random.Random(0))
        assert len(sample) == 4
        assert all(row in list(table) for row in sample)

    def test_sample_too_many_rejected(self, schema):
        with pytest.raises(ValidationError):
            BooleanTable(schema, [1]).sample(2, random.Random(0))


class TestEqualityAndRepr:
    def test_equality(self, schema):
        assert BooleanTable(schema, [1, 2]) == BooleanTable(schema, [1, 2])
        assert BooleanTable(schema, [1]) != BooleanTable(schema, [2])

    def test_rows_returns_copy(self, schema):
        table = BooleanTable(schema, [1])
        rows = table.rows
        rows.append(2)
        assert len(table) == 1

    def test_repr_mentions_shape(self, schema):
        assert "rows=2" in repr(BooleanTable(schema, [1, 2]))
