"""Tests for CSV/JSON table loading and saving."""

import pytest

from repro.booldata import (
    BooleanTable,
    Schema,
    load_table_csv,
    load_table_json,
    save_table_csv,
    save_table_json,
)
from repro.common.errors import ValidationError


@pytest.fixture
def table(paper_log) -> BooleanTable:
    return paper_log


class TestCsv:
    def test_round_trip(self, table, tmp_path):
        path = tmp_path / "log.csv"
        save_table_csv(table, path)
        loaded = load_table_csv(path)
        assert loaded == table

    def test_header_becomes_schema(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,0\n0,1\n")
        loaded = load_table_csv(path)
        assert loaded.schema.names == ("a", "b")
        assert list(loaded) == [0b01, 0b10]

    def test_header_whitespace_stripped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a , b\n1,1\n")
        assert load_table_csv(path).schema.names == ("a", "b")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_table_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(ValidationError, match=":2"):
            load_table_csv(path)

    def test_non_integer_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\nyes,no\n")
        with pytest.raises(ValidationError):
            load_table_csv(path)

    def test_non_binary_cell_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n2,0\n")
        with pytest.raises(ValidationError):
            load_table_csv(path)


class TestJson:
    def test_round_trip(self, table, tmp_path):
        path = tmp_path / "log.json"
        save_table_json(table, path)
        assert load_table_json(path) == table

    def test_shape(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('{"attributes": ["x", "y"], "rows": [["y"], []]}')
        loaded = load_table_json(path)
        assert list(loaded) == [0b10, 0]

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"rows": []}')
        with pytest.raises(ValidationError):
            load_table_json(path)

    def test_unknown_attribute_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"attributes": ["x"], "rows": [["z"]]}')
        with pytest.raises(ValidationError):
            load_table_json(path)


class TestCrossFormat:
    def test_csv_and_json_agree(self, table, tmp_path):
        csv_path = tmp_path / "t.csv"
        json_path = tmp_path / "t.json"
        save_table_csv(table, csv_path)
        save_table_json(table, json_path)
        assert load_table_csv(csv_path) == load_table_json(json_path)


import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), max_size=15))
def test_csv_round_trip_property(rows):
    table = BooleanTable(Schema.anonymous(8), rows)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.csv"
        save_table_csv(table, path)
        assert load_table_csv(path) == table


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), max_size=15))
def test_json_round_trip_property(rows):
    table = BooleanTable(Schema.anonymous(8), rows)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.json"
        save_table_json(table, path)
        assert load_table_json(path) == table
