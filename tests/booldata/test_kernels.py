"""Bitmap-kernel equivalence: every kernel is bit-for-bit the reference.

The pure-Python big-int kernel is the executable specification; the
packed numpy kernel and the compressed roaring-style kernel must answer
every :class:`~repro.booldata.index.VerticalIndex` question — including
the logical op counters — identically on any instance.  Exercised at
the edge widths (1, 63, 64, 65, 130: word boundaries and multi-word
rows) and edge row counts (0, 1, and word boundaries ±1).
"""

import random

import pytest

from repro.booldata import kernels
from repro.booldata.index import VerticalIndex, build_columns
from repro.common.bits import full_mask
from repro.common.errors import ValidationError

CONCRETE = list(kernels.available_kernels())
FAST = [k for k in CONCRETE if k != "python"]

EDGE_WIDTHS = [1, 63, 64, 65, 130]
EDGE_ROWS = [0, 1, 63, 64, 65]


def random_rows(width: int, num_rows: int, seed: int, density: float = 0.3):
    rng = random.Random(seed * 1000003 + width * 101 + num_rows)
    rows = []
    for _ in range(num_rows):
        row = 0
        for attribute in range(width):
            if rng.random() < density:
                row |= 1 << attribute
        rows.append(row)
    return rows


def random_masks(width: int, count: int, seed: int):
    rng = random.Random(seed)
    return [rng.randrange(1 << width) for _ in range(count)]


def probe(index: VerticalIndex, width: int, seed: int):
    """Answer a deterministic battery of queries; return everything."""
    rng = random.Random(seed)
    keeps = [rng.randrange(1 << width) for _ in range(8)] + [0, full_mask(width)]
    within = index.satisfied_rows(keeps[0])
    answers = {
        "columns": index.columns,
        "used": index.used_attributes,
        "satisfied_rows": [index.satisfied_rows(k) for k in keeps],
        "satisfied_within": [index.satisfied_rows(k, within) for k in keeps],
        "satisfied_count": [index.satisfied_count(k) for k in keeps],
        "satisfied_counts": index.satisfied_counts(keeps),
        "counts_within": index.satisfied_counts(keeps, within),
        "cooccurring": [index.cooccurring_rows(k) for k in keeps],
        "cooccurring_within": [index.cooccurring_rows(k, within) for k in keeps],
        "disjoint": [index.disjoint_rows(k) for k in keeps],
        "frequencies": index.attribute_frequencies(),
        "frequencies_pooled": index.attribute_frequencies(keeps[1], within),
    }
    if width <= 16:
        pool = index.used_attributes or keeps[1]
        size = min(2, pool.bit_count())
        answers["best_subset"] = index.best_subset(pool, size)
    answers["ops"] = index.ops_snapshot()
    return answers


@pytest.mark.parametrize("kernel", FAST)
@pytest.mark.parametrize("width", EDGE_WIDTHS)
@pytest.mark.parametrize("num_rows", EDGE_ROWS)
def test_kernels_match_reference_at_edges(kernel, width, num_rows):
    rows = random_rows(width, num_rows, seed=7)
    reference = VerticalIndex(width, rows, kernel="python")
    candidate = VerticalIndex(width, rows, kernel=kernel)
    assert candidate.kernel == kernel
    assert probe(candidate, width, seed=13) == probe(reference, width, seed=13)


@pytest.mark.parametrize("kernel", FAST)
@pytest.mark.parametrize("seed", [3, 17, 29])
def test_kernels_match_reference_on_random_instances(kernel, seed):
    rng = random.Random(seed)
    width = rng.choice([6, 14, 70, 128])
    rows = random_rows(width, rng.randrange(2, 300), seed, density=rng.random())
    reference = VerticalIndex(width, rows, kernel="python")
    candidate = VerticalIndex(width, rows, kernel=kernel)
    assert probe(candidate, width, seed) == probe(reference, width, seed)


@pytest.mark.parametrize("kernel", CONCRETE)
def test_from_columns_round_trip(kernel):
    width, rows = 67, random_rows(67, 90, seed=5)
    columns = build_columns(width, rows)
    index = VerticalIndex.from_columns(width, len(rows), columns, kernel=kernel)
    assert index.columns == columns
    assert index.num_rows == len(rows)
    rebuilt = VerticalIndex(width, rows, kernel=kernel)
    assert probe(index, width, seed=23) == probe(rebuilt, width, seed=23)


@pytest.mark.parametrize("kernel", CONCRETE)
def test_merge_and_drop_prefix_match_a_rebuild(kernel):
    width = 70
    first = random_rows(width, 40, seed=1)
    second = random_rows(width, 100, seed=2)
    store = kernels.store_class(kernel).build(width, first)
    store.merge_rows(second, len(first))
    assert store.num_rows == len(first) + len(second)
    assert store.int_columns() == build_columns(width, first + second)
    store.drop_prefix(30)
    assert store.num_rows == len(first) + len(second) - 30
    assert store.int_columns() == build_columns(width, (first + second)[30:])


@pytest.mark.parametrize("kernel", CONCRETE)
def test_clone_is_independent(kernel):
    width, rows = 65, random_rows(65, 70, seed=9)
    store = kernels.store_class(kernel).build(width, rows)
    twin = store.clone()
    store.merge_rows([full_mask(width)], len(rows))
    assert twin.int_columns() == build_columns(width, rows)
    assert twin.num_rows == len(rows)


@pytest.mark.parametrize("kernel", CONCRETE)
def test_memory_bytes_is_positive_and_int(kernel):
    index = VerticalIndex(64, random_rows(64, 200, seed=4), kernel=kernel)
    assert isinstance(index.memory_bytes(), int)
    assert index.memory_bytes() > 0


def test_compressed_is_smaller_on_sparse_logs():
    rows = random_rows(64, 5000, seed=8, density=0.002)
    dense = VerticalIndex(64, rows, kernel="python")
    sparse = VerticalIndex(64, rows, kernel="compressed")
    assert sparse.memory_bytes() < dense.memory_bytes()
    assert sparse.columns == dense.columns


class TestRegistry:
    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ValidationError, match="unknown kernel"):
            kernels.validate_kernel("bitslice")

    def test_choices_cover_kernels_plus_auto(self):
        assert set(kernels.KERNEL_CHOICES) == set(kernels.KERNELS) | {"auto"}

    def test_concrete_names_resolve_to_themselves(self):
        for kernel in kernels.available_kernels():
            assert kernels.resolve_kernel(kernel) == kernel

    def test_auto_prefers_python_on_small_logs(self):
        assert kernels.resolve_kernel("auto", num_rows=10) == "python"

    def test_auto_prefers_numpy_on_large_logs(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_available", True)
        resolved = kernels.resolve_kernel(
            "auto", num_rows=kernels.AUTO_NUMPY_MIN_ROWS
        )
        assert resolved == "numpy"

    def test_auto_without_numpy_picks_compressed_for_huge_sparse(
        self, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_numpy_available", False)
        resolved = kernels.resolve_kernel(
            "auto", num_rows=kernels.AUTO_COMPRESSED_MIN_ROWS, density=0.001
        )
        assert resolved == "compressed"

    def test_auto_without_numpy_keeps_python_for_dense(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_available", False)
        resolved = kernels.resolve_kernel(
            "auto", num_rows=kernels.AUTO_COMPRESSED_MIN_ROWS, density=0.5
        )
        assert resolved == "python"

    def test_numpy_request_without_numpy_is_a_validation_error(
        self, monkeypatch
    ):
        monkeypatch.setattr(kernels, "_numpy_available", False)
        with pytest.raises(ValidationError, match="repro\\[fast\\]"):
            kernels.resolve_kernel("numpy")
        with pytest.raises(ValidationError, match="not installed"):
            kernels.store_class("numpy")
        assert kernels.available_kernels() == ("python", "compressed")

    def test_store_classes_carry_their_kernel_name(self):
        for kernel in kernels.available_kernels():
            assert kernels.store_class(kernel).kernel == kernel
