"""Tests for attribute schemas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import Schema
from repro.common.errors import ValidationError


class TestConstruction:
    def test_names_preserved_in_order(self):
        schema = Schema(["b", "a", "c"])
        assert schema.names == ("b", "a", "c")
        assert schema.width == 3

    def test_anonymous(self):
        schema = Schema.anonymous(4)
        assert schema.names == ("a0", "a1", "a2", "a3")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Schema([])

    def test_duplicate_rejected(self):
        with pytest.raises(ValidationError):
            Schema(["x", "x"])

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError):
            Schema(["ok", 3])

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Schema([""])


class TestMaskConversions:
    def test_mask_of_names(self):
        schema = Schema(["ac", "four_door", "turbo"])
        assert schema.mask_of(["ac", "turbo"]) == 0b101

    def test_names_of_mask_in_schema_order(self):
        schema = Schema(["ac", "four_door", "turbo"])
        assert schema.names_of(0b110) == ["four_door", "turbo"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            Schema(["a"]).mask_of(["b"])

    def test_bit_vector_round_trip(self):
        schema = Schema.anonymous(5)
        bits = [1, 0, 1, 1, 0]
        mask = schema.mask_from_bits(bits)
        assert schema.bits_from_mask(mask) == bits

    def test_bit_vector_wrong_length(self):
        with pytest.raises(ValidationError):
            Schema.anonymous(3).mask_from_bits([1, 0])

    def test_bit_vector_bad_entry(self):
        with pytest.raises(ValidationError):
            Schema.anonymous(2).mask_from_bits([1, 2])

    @given(st.integers(1, 20), st.data())
    def test_mask_name_round_trip_property(self, width, data):
        schema = Schema.anonymous(width)
        mask = data.draw(st.integers(0, schema.full))
        assert schema.mask_of(schema.names_of(mask)) == mask


class TestValidateMask:
    def test_in_range_ok(self):
        schema = Schema.anonymous(3)
        assert schema.validate_mask(0b111) == 0b111

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Schema.anonymous(3).validate_mask(0b1000)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Schema.anonymous(3).validate_mask(-1)

    def test_non_int_rejected(self):
        with pytest.raises(ValidationError):
            Schema.anonymous(3).validate_mask("0b101")


class TestRestrict:
    def test_sub_schema_and_mapping(self):
        schema = Schema(["a", "b", "c", "d"])
        sub, mapping = schema.restrict(["d", "b"])
        assert sub.names == ("d", "b")
        assert mapping == {3: 0, 1: 1}


class TestEquality:
    def test_equal_schemas(self):
        assert Schema(["x", "y"]) == Schema(["x", "y"])

    def test_different_order_not_equal(self):
        assert Schema(["x", "y"]) != Schema(["y", "x"])
