"""Tests for the domination skyline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema
from repro.booldata.skyline import dominators_of, skyline, skyline_indices


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(4)


class TestSkyline:
    def test_dominated_rows_removed(self, schema):
        table = BooleanTable(schema, [0b0001, 0b0011, 0b0111])
        assert skyline_indices(table) == [2]

    def test_incomparable_rows_kept(self, schema):
        table = BooleanTable(schema, [0b0011, 0b1100])
        assert skyline_indices(table) == [0, 1]

    def test_duplicates_reported_once(self, schema):
        table = BooleanTable(schema, [0b0011, 0b0011, 0b0001])
        assert skyline_indices(table) == [0]

    def test_empty_table(self, schema):
        assert skyline_indices(BooleanTable(schema)) == []

    def test_skyline_table_preserves_order(self, schema):
        table = BooleanTable(schema, [0b1100, 0b0001, 0b0011])
        result = skyline(table)
        assert list(result) == [0b1100, 0b0011]

    def test_paper_database_skyline(self, paper_database):
        indices = skyline_indices(paper_database)
        # t3 = [1,0,0,1,1,1] and t4 = [1,1,0,1,0,1] are maximal;
        # t2 = [0,1,1,0,0,0] and t7 = [0,0,1,1,0,0] are incomparable too
        assert 2 in indices and 3 in indices

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), max_size=20))
    def test_skyline_properties(self, rows):
        table = BooleanTable(Schema.anonymous(8), rows)
        chosen = skyline_indices(table)
        masks = [table[i] for i in chosen]
        # no chosen row strictly dominated by any table row
        for mask in masks:
            assert not any(
                other != mask and mask & other == mask for other in rows
            )
        # every table row is dominated by (or equal to) some skyline row
        for row in rows:
            assert any(row & mask == row for mask in masks)
        # antichain: no two chosen rows comparable
        for a in masks:
            for b in masks:
                if a != b:
                    assert not (a & b == a)


class TestDominators:
    def test_strict_domination_only(self, schema):
        table = BooleanTable(schema, [0b0011, 0b0111, 0b0001])
        assert dominators_of(table, 0b0011) == [1]

    def test_on_the_skyline_means_none(self, schema):
        table = BooleanTable(schema, [0b0011, 0b1100])
        assert dominators_of(table, 0b1111) == []

    def test_new_product_positioning(self, paper_database, paper_tuple):
        """The paper's new car is not dominated by any existing car."""
        assert dominators_of(paper_database, paper_tuple) == []
