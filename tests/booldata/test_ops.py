"""Tests for domination, satisfaction, compression and complementation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import (
    BooleanTable,
    Schema,
    complement_table,
    compress_tuple,
    dominates,
    satisfied_count,
    satisfied_queries,
    satisfies,
)
from repro.booldata.ops import dominated_count, is_compression
from repro.common.errors import ValidationError


class TestDomination:
    def test_paper_definition(self):
        # t2 dominates t1 iff t2 has a 1 wherever t1 does
        assert dominates(0b1110, 0b0110)
        assert not dominates(0b0110, 0b1110)

    def test_reflexive(self):
        assert dominates(0b101, 0b101)

    def test_query_as_special_tuple(self):
        # paper: "if we view q as a special type of tuple, then t dominates q"
        query, tup = 0b0011, 0b0111
        assert satisfies(query, tup) == dominates(tup, query)


class TestSatisfaction:
    def test_paper_example_1(self, paper_log, paper_tuple, paper_schema):
        # t' = {AC, Four Door, Power Doors} satisfies q1, q2, q3
        compressed = paper_schema.mask_of(["ac", "four_door", "power_doors"])
        assert satisfied_queries(paper_log, compressed) == [0, 1, 2]
        assert satisfied_count(paper_log, compressed) == 3

    def test_empty_query_always_satisfied(self):
        schema = Schema.anonymous(3)
        log = BooleanTable(schema, [0])
        assert satisfied_count(log, 0) == 1

    def test_monotone_in_tuple(self):
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00011, 0b00100, 0b11000])
        smaller = satisfied_count(log, 0b00011)
        bigger = satisfied_count(log, 0b00111)
        assert bigger >= smaller

    @given(st.lists(st.integers(0, 63), max_size=25), st.integers(0, 63))
    def test_count_matches_filter(self, queries, tup):
        log = BooleanTable(Schema.anonymous(6), queries)
        assert satisfied_count(log, tup) == len(satisfied_queries(log, tup))


class TestDominatedCount:
    def test_paper_cbd_example(self, paper_database, paper_schema):
        # t' = {AC, Four Door, Power Doors, Power Brakes} dominates t1, t4, t5, t6
        compressed = paper_schema.mask_of(
            ["ac", "four_door", "power_doors", "power_brakes"]
        )
        assert dominated_count(paper_database, compressed) == 4


class TestCompression:
    def test_keep_subset(self):
        assert compress_tuple(0b1110, 0b0110) == 0b0110

    def test_keep_non_subset_rejected(self):
        with pytest.raises(ValidationError):
            compress_tuple(0b1110, 0b0001)

    def test_is_compression(self):
        assert is_compression(0b1110, 0b0110, 2)
        assert not is_compression(0b1110, 0b0110, 1)  # too many kept
        assert not is_compression(0b1110, 0b0001, 3)  # not a subset


class TestComplementTable:
    def test_involution(self):
        schema = Schema.anonymous(4)
        table = BooleanTable(schema, [0b0101, 0b1111, 0])
        assert complement_table(complement_table(table)) == table

    def test_density_flips(self):
        schema = Schema.anonymous(4)
        table = BooleanTable(schema, [0b0001, 0b0011])
        assert complement_table(table).density() == pytest.approx(1 - table.density())

    def test_support_duality(self):
        """freq of I in ~Q == number of queries disjoint from I (the key
        identity behind MaxFreqItemSets-SOC-CB-QL)."""
        schema = Schema.anonymous(5)
        log = BooleanTable(schema, [0b00011, 0b00110, 0b10000])
        complemented = complement_table(log)
        itemset = 0b01000
        explicit = sum(1 for row in complemented if row & itemset == itemset)
        disjoint = sum(1 for query in log if query & itemset == 0)
        assert explicit == disjoint == 3
