"""Unit and property tests for the vertical bitmap index."""

import random
from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.booldata import BooleanTable, Schema, VerticalIndex
from repro.booldata.index import build_columns, validate_engine
from repro.booldata.table import count_attribute_frequencies
from repro.common.bits import bit_indices, from_indices
from repro.common.errors import ValidationError

WIDTH = 6

rows_strategy = st.lists(st.integers(0, 2**WIDTH - 1), max_size=40)
mask_strategy = st.integers(0, 2**WIDTH - 1)


def make_index(rows):
    table = BooleanTable(Schema.anonymous(WIDTH), rows)
    return table, table.vertical_index()


class TestConstruction:
    def test_columns_transpose_rows(self):
        _, index = make_index([0b011, 0b101, 0b001])
        assert index.column(0) == 0b111  # attribute 0 in rows 0, 1, 2
        assert index.column(1) == 0b001  # attribute 1 in row 0 only
        assert index.column(2) == 0b010  # attribute 2 in row 1 only

    def test_empty_table(self):
        _, index = make_index([])
        assert index.num_rows == 0
        assert index.all_rows == 0
        assert index.satisfied_count(0b111) == 0

    def test_used_attributes(self):
        _, index = make_index([0b101, 0b100])
        assert index.used_attributes == 0b101

    def test_build_columns_matches_bit_by_bit(self):
        rng = random.Random(7)
        rows = [rng.randrange(2**WIDTH) for _ in range(200)]
        columns = build_columns(WIDTH, rows)
        for attribute in range(WIDTH):
            for tid, row in enumerate(rows):
                assert (columns[attribute] >> tid & 1) == (row >> attribute & 1)

    def test_table_caches_and_append_invalidates(self):
        table = BooleanTable(Schema.anonymous(WIDTH), [0b011])
        assert table.cached_vertical_index is None
        index = table.vertical_index()
        assert table.vertical_index() is index
        assert table.cached_vertical_index is index
        table.append(0b100)
        assert table.cached_vertical_index is None
        assert table.vertical_index().column(2) == 0b10

    def test_validate_engine(self):
        assert validate_engine("naive") == "naive"
        assert validate_engine("vertical") == "vertical"
        with pytest.raises(ValidationError):
            validate_engine("horizontal")


class TestIdentities:
    @given(rows_strategy, mask_strategy)
    def test_satisfied_rows_matches_row_major(self, rows, keep):
        _, index = make_index(rows)
        expected = from_indices(
            i for i, row in enumerate(rows) if row & keep == row
        )
        assert index.satisfied_rows(keep) == expected
        assert index.satisfied_count(keep) == sum(
            1 for row in rows if row & keep == row
        )

    @given(rows_strategy, mask_strategy)
    def test_cooccurring_rows_matches_row_major(self, rows, attrs):
        _, index = make_index(rows)
        expected = from_indices(
            i for i, row in enumerate(rows) if row & attrs == attrs
        )
        assert index.cooccurring_rows(attrs) == expected

    @given(rows_strategy, mask_strategy)
    def test_disjoint_count_is_complemented_support(self, rows, itemset):
        _, index = make_index(rows)
        assert index.disjoint_count(itemset) == sum(
            1 for row in rows if row & itemset == 0
        )

    @given(rows_strategy, mask_strategy, mask_strategy)
    def test_within_restricts_every_count(self, rows, keep, within_seed):
        _, index = make_index(rows)
        within = within_seed & index.all_rows
        assert index.satisfied_rows(keep, within) == index.satisfied_rows(keep) & within
        assert index.cooccurring_rows(keep, within) == (
            index.cooccurring_rows(keep) & within
        )
        assert index.disjoint_rows(keep, within) == index.disjoint_rows(keep) & within


class TestFrequencies:
    @given(rows_strategy)
    def test_matches_table_statistic(self, rows):
        table, index = make_index(rows)
        assert index.attribute_frequencies() == count_attribute_frequencies(
            rows, WIDTH
        )
        # table method answers from the index once built
        assert table.attribute_frequencies() == index.attribute_frequencies()

    @given(rows_strategy, mask_strategy)
    def test_pool_zeroes_outside_attributes(self, rows, pool):
        _, index = make_index(rows)
        frequencies = index.attribute_frequencies(pool=pool)
        full = index.attribute_frequencies()
        for attribute in range(WIDTH):
            expected = full[attribute] if pool >> attribute & 1 else 0
            assert frequencies[attribute] == expected


class TestBestSubset:
    @given(rows_strategy, mask_strategy, st.integers(0, WIDTH))
    def test_matches_exhaustive_enumeration(self, rows, pool, budget):
        _, index = make_index(rows)
        size = min(budget, pool.bit_count())
        best_mask, best_count, leaves = index.best_subset(pool, size)
        # reference: first maximum in lexicographic combination order
        expected_mask, expected_count, expected_leaves = 0, -1, 0
        for chosen in combinations(bit_indices(pool), size):
            candidate = from_indices(chosen)
            expected_leaves += 1
            count = sum(1 for row in rows if row & candidate == row)
            if count > expected_count:
                expected_count = count
                expected_mask = candidate
        assert leaves == expected_leaves
        assert best_mask == expected_mask
        assert best_count == max(expected_count, 0)

    def test_within_restriction(self):
        _, index = make_index([0b001, 0b010, 0b011])
        # only rows 0 and 2 considered
        best_mask, best_count, _ = index.best_subset(0b011, 1, within=0b101)
        assert best_mask == 0b001  # keeps row 0; row 2 needs both attributes
        assert best_count == 1
