"""Tests for workload profiling."""

import math

import pytest

from repro.booldata import BooleanTable, Schema
from repro.common.errors import ValidationError
from repro.data.stats import profile_workload


@pytest.fixture
def schema() -> Schema:
    return Schema(["a", "b", "c", "d"])


class TestCounts:
    def test_basic_profile(self, schema):
        log = BooleanTable(schema, [0b0011, 0b0011, 0b0100])
        profile = profile_workload(log)
        assert profile.query_count == 3
        assert profile.distinct_queries == 2
        assert profile.duplication_ratio == pytest.approx(1.5)
        assert profile.size_histogram == {2: 2, 1: 1}
        assert profile.attribute_frequencies == [2, 2, 1, 0]

    def test_mean_query_size(self, schema):
        log = BooleanTable(schema, [0b0001, 0b0111])
        assert profile_workload(log).mean_query_size == pytest.approx(2.0)

    def test_empty_log(self, schema):
        profile = profile_workload(BooleanTable(schema))
        assert profile.query_count == 0
        assert profile.duplication_ratio == 1.0
        assert profile.mean_query_size == 0.0
        assert profile.attribute_entropy_bits == 0.0

    def test_paper_example_profile(self, paper_log):
        profile = profile_workload(paper_log)
        assert profile.query_count == 5
        assert profile.distinct_queries == 5
        # power_doors is the most mentioned attribute (3 queries)
        assert profile.top_attributes(1) == [("power_doors", 3)]


class TestPairs:
    def test_top_pairs(self, schema):
        log = BooleanTable(schema, [0b0011, 0b0011, 0b0110])
        profile = profile_workload(log, top_pairs=2)
        assert profile.top_pairs[0] == (0, 1, 2)  # a+b together twice

    def test_pair_limit(self, schema):
        log = BooleanTable(schema, [0b1111])
        profile = profile_workload(log, top_pairs=3)
        assert len(profile.top_pairs) == 3

    def test_negative_limit_rejected(self, schema):
        with pytest.raises(ValidationError):
            profile_workload(BooleanTable(schema), top_pairs=-1)


class TestEntropy:
    def test_single_attribute_entropy_zero(self, schema):
        log = BooleanTable(schema, [0b0001] * 5)
        assert profile_workload(log).attribute_entropy_bits == 0.0

    def test_uniform_mentions_max_entropy(self, schema):
        log = BooleanTable(schema, [0b0001, 0b0010, 0b0100, 0b1000])
        assert profile_workload(log).attribute_entropy_bits == pytest.approx(
            math.log2(4)
        )

    def test_skew_lowers_entropy(self, schema):
        uniform = BooleanTable(schema, [0b0001, 0b0010, 0b0100, 0b1000])
        skewed = BooleanTable(schema, [0b0001] * 7 + [0b0010])
        assert (
            profile_workload(skewed).attribute_entropy_bits
            < profile_workload(uniform).attribute_entropy_bits
        )

    def test_zipf_workload_less_entropic_than_uniform(self):
        from repro.data import synthetic_workload

        schema = Schema.anonymous(32)
        uniform = synthetic_workload(schema, 800, seed=1, popularity="uniform")
        zipf = synthetic_workload(schema, 800, seed=1, popularity="zipf")
        assert (
            profile_workload(zipf).attribute_entropy_bits
            < profile_workload(uniform).attribute_entropy_bits
        )


class TestRendering:
    def test_text_report(self, paper_log):
        text = profile_workload(paper_log).to_text()
        assert "queries: 5" in text
        assert "top attributes:" in text
        assert "power_doors" in text

    def test_report_without_pairs(self, schema):
        log = BooleanTable(schema, [0b0001])
        text = profile_workload(log, top_pairs=0).to_text()
        assert "co-occurring" not in text
