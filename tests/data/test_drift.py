"""Tests for the drifting workload generator."""

import pytest

from repro.booldata import Schema
from repro.common.errors import ValidationError
from repro.data.drift import drifting_workload, interest_profile


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(12)


class TestInterestProfile:
    def test_boosts_named_attributes(self):
        schema = Schema(["a", "b", "c"])
        weights = interest_profile(schema, ["b"], boost=5.0, base=0.5)
        assert weights == [0.5, 5.0, 0.5]

    def test_boost_must_exceed_base(self):
        schema = Schema(["a"])
        with pytest.raises(ValidationError):
            interest_profile(schema, ["a"], boost=0.1, base=0.2)

    def test_zero_base_rejected(self):
        schema = Schema(["a", "b"])
        with pytest.raises(ValidationError, match="base weight must be positive"):
            interest_profile(schema, ["a"], base=0.0)

    def test_negative_base_rejected(self):
        schema = Schema(["a", "b"])
        with pytest.raises(ValidationError, match="base weight must be positive"):
            interest_profile(schema, ["a"], base=-0.5)


class TestDriftingWorkload:
    def test_size_and_schema(self, schema):
        start = [1.0] * 12
        end = [1.0] * 12
        log = drifting_workload(schema, 30, start, end, seed=0)
        assert len(log) == 30
        assert log.schema is schema

    def test_deterministic(self, schema):
        start = interest_profile(schema, ["a0"], boost=6.0)
        end = interest_profile(schema, ["a11"], boost=6.0)
        a = drifting_workload(schema, 25, start, end, seed=3)
        b = drifting_workload(schema, 25, start, end, seed=3)
        assert list(a) == list(b)

    def test_interest_actually_drifts(self, schema):
        """Early traffic mentions the start attribute far more than the
        end attribute, and vice versa for late traffic."""
        start = interest_profile(schema, ["a0"], boost=30.0, base=0.1)
        end = interest_profile(schema, ["a11"], boost=30.0, base=0.1)
        log = drifting_workload(schema, 300, start, end, seed=1)
        early = log.rows[:100]
        late = log.rows[-100:]

        def mentions(rows, attribute):
            return sum(1 for row in rows if row >> attribute & 1)

        assert mentions(early, 0) > mentions(early, 11)
        assert mentions(late, 11) > mentions(late, 0)

    def test_weight_length_validated(self, schema):
        with pytest.raises(ValidationError):
            drifting_workload(schema, 5, [1.0], [1.0] * 12)

    def test_negative_size_rejected(self, schema):
        with pytest.raises(ValidationError):
            drifting_workload(schema, -1, [1.0] * 12, [1.0] * 12)

    def test_negative_weight_rejected(self, schema):
        bad = [1.0] * 11 + [-0.1]
        with pytest.raises(ValidationError, match="must be non-negative"):
            drifting_workload(schema, 5, bad, [1.0] * 12)
        with pytest.raises(ValidationError, match="end weights"):
            drifting_workload(schema, 5, [1.0] * 12, bad)

    def test_all_zero_weights_rejected(self, schema):
        """The sampler would silently always pick the last attribute."""
        with pytest.raises(ValidationError, match="must not all be zero"):
            drifting_workload(schema, 5, [0.0] * 12, [1.0] * 12)
        with pytest.raises(ValidationError, match="end weights"):
            drifting_workload(schema, 5, [1.0] * 12, [0.0] * 12)

    def test_single_query(self, schema):
        log = drifting_workload(schema, 1, [1.0] * 12, [1.0] * 12, seed=0)
        assert len(log) == 1

    def test_zero_queries(self, schema):
        assert len(drifting_workload(schema, 0, [1.0] * 12, [1.0] * 12)) == 0

    def test_monitor_integration(self, schema):
        """End to end: a monitor watching drifting traffic eventually
        recommends re-optimization."""
        from repro.core import MaxFreqItemsetsSolver, VisibilityProblem
        from repro.simulate import VisibilityMonitor

        start = interest_profile(schema, ["a0", "a1"], boost=20.0, base=0.05)
        end = interest_profile(schema, ["a10", "a11"], boost=20.0, base=0.05)
        traffic = drifting_workload(schema, 240, start, end, seed=5)
        early = traffic.rows[:60]
        new_tuple = schema.full
        problem = VisibilityProblem(
            drifting_workload(schema, 60, start, start, seed=6), new_tuple, 3
        )
        initial = MaxFreqItemsetsSolver().solve(problem)
        monitor = VisibilityMonitor(
            new_tuple=new_tuple,
            keep_mask=initial.keep_mask,
            budget=3,
            schema=schema,
            window_size=60,
            tolerance=0.6,
        )
        flagged = False
        for query in traffic:
            monitor.observe(query)
            if monitor.status().should_reoptimize:
                flagged = True
                break
        assert flagged
