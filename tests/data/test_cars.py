"""Tests for the synthetic used-cars dataset."""

import pytest

from repro.common.errors import ValidationError
from repro.data import CAR_ATTRIBUTES, CAR_CLASSES, generate_cars


class TestShape:
    def test_default_shape_matches_paper(self):
        cars = generate_cars(count=500, seed=0)
        assert cars.schema.width == 32
        assert len(cars.table) == 500
        assert len(cars.classes) == 500
        assert len(cars.prices) == 500

    def test_attribute_names(self):
        assert len(CAR_ATTRIBUTES) == 32
        assert len(set(CAR_ATTRIBUTES)) == 32
        assert "ac" in CAR_ATTRIBUTES

    def test_class_profiles_reference_real_attributes(self):
        for profile in CAR_CLASSES.values():
            for key in profile:
                assert key == "base" or key in CAR_ATTRIBUTES


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_cars(200, seed=7)
        b = generate_cars(200, seed=7)
        assert list(a.table) == list(b.table)
        assert a.classes == b.classes
        assert a.prices == b.prices

    def test_different_seed_different_data(self):
        a = generate_cars(200, seed=7)
        b = generate_cars(200, seed=8)
        assert list(a.table) != list(b.table)


class TestRealism:
    def test_class_correlation_shows_in_features(self):
        cars = generate_cars(3000, seed=1)
        index = {name: i for i, name in enumerate(CAR_ATTRIBUTES)}

        def rate(car_class, attribute):
            rows = [
                row
                for row, cls in zip(cars.table, cars.classes)
                if cls == car_class
            ]
            return sum(1 for row in rows if row >> index[attribute] & 1) / len(rows)

        assert rate("sports", "spoiler") > rate("sedan", "spoiler")
        assert rate("suv", "four_wheel_drive") > rate("sedan", "four_wheel_drive")
        assert rate("luxury", "leather_seats") > rate("economy", "leather_seats")

    def test_density_moderate(self):
        cars = generate_cars(2000, seed=2)
        assert 0.3 < cars.table.density() < 0.6

    def test_prices_respect_class_ranges(self):
        cars = generate_cars(1000, seed=3)
        for price, car_class in zip(cars.prices, cars.classes):
            assert price > 0
        luxury = [p for p, c in zip(cars.prices, cars.classes) if c == "luxury"]
        economy = [p for p, c in zip(cars.prices, cars.classes) if c == "economy"]
        assert sum(luxury) / len(luxury) > sum(economy) / len(economy)


class TestApi:
    def test_random_car_indices(self):
        cars = generate_cars(100, seed=4)
        indices = cars.random_car_indices(10, seed=0)
        assert len(indices) == len(set(indices)) == 10
        assert all(0 <= i < 100 for i in indices)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValidationError):
            generate_cars(0)

    def test_unknown_class_weights_rejected(self):
        with pytest.raises(ValidationError):
            generate_cars(10, class_weights={"spaceship": 1.0})

    def test_mismatched_metadata_rejected(self):
        cars = generate_cars(10, seed=0)
        from repro.data.cars import CarsDataset

        with pytest.raises(ValidationError):
            CarsDataset(cars.schema, cars.table, cars.classes[:-1], cars.prices)
