"""Tests for query-log generators."""

from collections import Counter

import pytest

from repro.booldata import Schema
from repro.common.errors import ValidationError
from repro.data import PAPER_SIZE_DISTRIBUTION, real_workload_surrogate, synthetic_workload


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(32)


class TestSyntheticWorkload:
    def test_size(self, schema):
        assert len(synthetic_workload(schema, 250, seed=0)) == 250

    def test_query_sizes_within_paper_mix(self, schema):
        log = synthetic_workload(schema, 500, seed=1)
        assert set(log.row_sizes()) <= set(PAPER_SIZE_DISTRIBUTION)

    def test_size_distribution_roughly_matches(self, schema):
        log = synthetic_workload(schema, 5000, seed=2)
        counts = Counter(log.row_sizes())
        for size, probability in PAPER_SIZE_DISTRIBUTION.items():
            assert counts[size] / 5000 == pytest.approx(probability, abs=0.03)

    def test_deterministic(self, schema):
        assert list(synthetic_workload(schema, 100, seed=3)) == list(
            synthetic_workload(schema, 100, seed=3)
        )

    def test_zipf_popularity_skews_attributes(self, schema):
        log = synthetic_workload(schema, 3000, seed=4, popularity="zipf")
        frequencies = sorted(log.attribute_frequencies(), reverse=True)
        # top attribute should dominate the median one
        assert frequencies[0] > 4 * max(1, frequencies[16])

    def test_explicit_attribute_weights(self, schema):
        weights = [0.0] * 32
        weights[3] = weights[5] = 1.0
        log = synthetic_workload(
            schema, 200, seed=5,
            size_distribution={1: 0.5, 2: 0.5},
            attribute_weights=weights,
        )
        used = 0
        for row in log:
            used |= row
        assert used & ~((1 << 3) | (1 << 5)) == 0

    def test_custom_distribution_validation(self, schema):
        with pytest.raises(ValidationError):
            synthetic_workload(schema, 10, size_distribution={1: 0.5})  # sums to 0.5
        with pytest.raises(ValidationError):
            synthetic_workload(schema, 10, size_distribution={0: 1.0})
        with pytest.raises(ValidationError):
            synthetic_workload(schema, 10, size_distribution={40: 1.0})

    def test_negative_size_rejected(self, schema):
        with pytest.raises(ValidationError):
            synthetic_workload(schema, -1)

    def test_unknown_popularity_rejected(self, schema):
        with pytest.raises(ValidationError):
            synthetic_workload(schema, 10, popularity="pareto")

    def test_weights_length_validated(self, schema):
        with pytest.raises(ValidationError):
            synthetic_workload(schema, 10, attribute_weights=[1.0])

    def test_zero_queries(self, schema):
        assert len(synthetic_workload(schema, 0)) == 0


class TestRealWorkloadSurrogate:
    def test_default_size_is_185(self, schema):
        assert len(real_workload_surrogate(schema)) == 185

    def test_all_queries_have_more_than_three_attributes(self, schema):
        """Anchors the paper's observation that m=3 satisfies no query."""
        log = real_workload_surrogate(schema, seed=9)
        assert all(size > 3 for size in log.row_sizes())
        assert max(log.row_sizes()) <= 6

    def test_deterministic(self, schema):
        assert list(real_workload_surrogate(schema, seed=1)) == list(
            real_workload_surrogate(schema, seed=1)
        )
