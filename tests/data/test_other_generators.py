"""Tests for the categorical / numeric / text-corpus generators."""

import pytest

from repro.common.errors import ValidationError
from repro.data import (
    generate_ads_corpus,
    generate_categorical,
    generate_numeric,
)
from repro.data.categorical import CategoricalDataset, CategoricalSchema
from repro.data.numeric import NumericDataset, Range


class TestCategoricalSchema:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CategoricalSchema({})

    def test_empty_domain_rejected(self):
        with pytest.raises(ValidationError):
            CategoricalSchema({"color": ()})

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValidationError):
            CategoricalSchema({"color": ("red", "red")})

    def test_validate_tuple(self):
        schema = CategoricalSchema({"color": ("red", "blue")})
        schema.validate_tuple({"color": "red"})
        with pytest.raises(ValidationError):
            schema.validate_tuple({"color": "green"})
        with pytest.raises(ValidationError):
            schema.validate_tuple({"size": "xl"})

    def test_validate_query_requires_conditions(self):
        schema = CategoricalSchema({"color": ("red",)})
        with pytest.raises(ValidationError):
            schema.validate_query({})


class TestGenerateCategorical:
    def test_shape_and_validity(self):
        dataset = generate_categorical(rows=50, queries=30, seed=0)
        assert len(dataset.rows) == 50
        assert len(dataset.query_log) == 30
        for row in dataset.rows:
            assert set(row) == set(dataset.schema.domains)

    def test_deterministic(self):
        assert generate_categorical(20, 10, seed=1).rows == generate_categorical(20, 10, seed=1).rows

    def test_partial_row_rejected_by_model(self):
        schema = CategoricalSchema({"a": ("x",), "b": ("y",)})
        with pytest.raises(ValidationError):
            CategoricalDataset(schema, [{"a": "x"}])

    def test_query_condition_range_validated(self):
        with pytest.raises(ValidationError):
            generate_categorical(10, 10, query_conditions=(0, 2))


class TestRange:
    def test_contains(self):
        assert Range(1, 3).contains(2)
        assert Range(1, 3).contains(1)
        assert not Range(1, 3).contains(3.5)

    def test_empty_range_rejected(self):
        with pytest.raises(ValidationError):
            Range(3, 1)


class TestGenerateNumeric:
    def test_shape(self):
        dataset = generate_numeric(rows=40, queries=25, seed=0)
        assert len(dataset.rows) == 40
        assert len(dataset.query_log) == 25
        for row in dataset.rows:
            assert set(row) == set(dataset.attributes)

    def test_matching_rows_semantics(self):
        dataset = NumericDataset(
            ["price"],
            [{"price": 100.0}, {"price": 300.0}],
            [{"price": Range(50, 150)}],
        )
        assert dataset.matching_rows(dataset.query_log[0]) == [0]

    def test_values_respect_profile(self):
        dataset = generate_numeric(rows=100, seed=1)
        from repro.data.numeric import _CAMERA_PROFILE

        for row in dataset.rows:
            for attribute, value in row.items():
                low, high, _ = _CAMERA_PROFILE[attribute]
                assert low <= value <= high

    def test_unknown_query_attribute_rejected(self):
        with pytest.raises(ValidationError):
            NumericDataset(["a"], [{"a": 1.0}], [{"b": Range(0, 1)}])

    def test_some_queries_match_data(self):
        dataset = generate_numeric(rows=200, queries=50, seed=2)
        matching = sum(1 for q in dataset.query_log if dataset.matching_rows(q))
        assert matching > 10  # workload is not vacuous


class TestAdsCorpus:
    def test_shape(self):
        corpus, log = generate_ads_corpus(documents=50, queries=40, seed=0)
        assert len(corpus) == 50
        assert len(log) == 40

    def test_queries_use_corpus_vocabulary_mostly(self):
        corpus, log = generate_ads_corpus(documents=200, queries=100, seed=1)
        vocabulary = set(corpus.vocabulary)
        in_vocab = sum(1 for q in log for w in q if w in vocabulary)
        total = sum(len(q) for q in log)
        assert in_vocab / total > 0.9

    def test_deterministic(self):
        a_corpus, a_log = generate_ads_corpus(30, 20, seed=2)
        b_corpus, b_log = generate_ads_corpus(30, 20, seed=2)
        assert a_corpus.raw_documents == b_corpus.raw_documents
        assert a_log == b_log

    def test_every_ad_mentions_apartment_and_rent(self):
        corpus, _ = generate_ads_corpus(20, 5, seed=3)
        for bag in corpus.bags:
            assert "apartment" in bag and "rent" in bag
