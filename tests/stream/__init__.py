"""Tests for the streaming query-log engine."""
