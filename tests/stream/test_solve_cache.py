"""SolveCache: versioned memoization, LRU bounds, stale-while-revalidate."""

from __future__ import annotations

import random

import pytest

from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.core.base import Solver
from repro.core.problem import VisibilityProblem
from repro.core.registry import SOLVERS, make_solver
from repro.runtime.harness import SolverHarness
from repro.stream.cache import SolveCache
from repro.stream.log import StreamingLog


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(10)


@pytest.fixture
def log(schema) -> StreamingLog:
    rng = random.Random(11)
    return StreamingLog(
        schema, window_size=60, rows=[rng.getrandbits(10) or 1 for _ in range(60)]
    )


class TestMemoization:
    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_hit_identical_to_uncached_solve(self, name, schema, log):
        """ISSUE acceptance: cached results match uncached ones for every
        registry solver."""
        cache = SolveCache(log)
        solver = make_solver(name, engine="vertical")
        first = cache.solve(schema.full, 3, solver)
        hit = cache.solve(schema.full, 3, solver)
        assert hit is first
        uncached = make_solver(name, engine="vertical").solve(
            VisibilityProblem(log.snapshot(), schema.full, 3)
        )
        assert hit.keep_mask == uncached.keep_mask
        assert hit.satisfied == uncached.satisfied
        assert cache.stats()["hits"] == 1

    def test_mutation_invalidates(self, schema, log):
        cache = SolveCache(log)
        solver = make_solver("ConsumeAttrCumul")
        cache.solve(schema.full, 3, solver)
        log.append(0b1)
        cache.solve(schema.full, 3, solver)
        assert cache.stats() == {
            "hits": 0, "misses": 2, "stale_serves": 0, "evictions": 0, "entries": 2,
        }

    def test_compaction_does_not_invalidate(self, schema, log):
        cache = SolveCache(log)
        solver = make_solver("ConsumeAttrCumul")
        first = cache.solve(schema.full, 3, solver)
        log.retire(2)
        missed = cache.solve(schema.full, 3, solver)  # retire = new epoch
        log.compact()
        hit = cache.solve(schema.full, 3, solver)     # compaction = same epoch
        assert hit is missed and hit is not first
        assert cache.hits == 1

    def test_distinct_keys_by_tuple_budget_solver(self, schema, log):
        cache = SolveCache(log)
        cache.solve(schema.full, 3, make_solver("ConsumeAttr"))
        cache.solve(schema.full, 4, make_solver("ConsumeAttr"))
        cache.solve(schema.full >> 1, 3, make_solver("ConsumeAttr"))
        cache.solve(schema.full, 3, make_solver("ConsumeQueries"))
        assert cache.stats()["misses"] == 4

    def test_lru_bound_evicts_oldest(self, schema, log):
        cache = SolveCache(log, capacity=2)
        solver = make_solver("ConsumeAttr")
        cache.solve(schema.full, 1, solver)
        cache.solve(schema.full, 2, solver)
        cache.solve(schema.full, 3, solver)   # evicts budget-1 entry
        assert len(cache) == 2
        assert cache.evictions == 1
        cache.solve(schema.full, 1, solver)   # miss: was evicted
        assert cache.stats()["misses"] == 4

    def test_eviction_prefers_dead_epochs(self, schema, log):
        """Regression (ISSUE satellite): eviction under capacity must
        drop dead-epoch entries — unreachable by construction, since
        every lookup embeds the current epoch — before any live one.
        After overflow, only live-epoch entries may remain."""
        cache = SolveCache(log, capacity=3)
        solver = make_solver("ConsumeAttr")
        cache.solve(schema.full, 1, solver)      # soon dead
        cache.solve(schema.full, 2, solver)      # soon dead
        log.append(0b1)                          # epoch bumps: both dead
        live_a = cache.solve(schema.full, 1, solver)
        live_b = cache.solve(schema.full, 2, solver)  # overflow: a dead one goes
        assert cache.evictions == 1
        assert cache.solve(schema.full, 1, solver) is live_a
        assert cache.solve(schema.full, 2, solver) is live_b
        assert cache.hits == 2
        live_c = cache.solve(schema.full, 3, solver)  # second dead one goes
        assert cache.evictions == 2
        assert all(key[3] == log.epoch for key in cache._entries)
        survivors = {id(entry) for entry in cache._entries.values()}
        assert survivors == {id(live_a), id(live_b), id(live_c)}

    def test_eviction_falls_back_to_lru_when_all_live(self, schema, log):
        cache = SolveCache(log, capacity=2)
        solver = make_solver("ConsumeAttr")
        cache.solve(schema.full, 1, solver)
        cache.solve(schema.full, 2, solver)
        cache.solve(schema.full, 3, solver)   # all live: LRU evicts budget 1
        cache.solve(schema.full, 1, solver)
        assert cache.stats()["misses"] == 4

    def test_capacity_validated(self, log):
        with pytest.raises(ValidationError, match="capacity"):
            SolveCache(log, capacity=0)

    def test_invalidate_clears_everything(self, schema, log):
        cache = SolveCache(log, stale_while_revalidate=True)
        cache.solve(schema.full, 3, make_solver("ConsumeAttr"))
        cache.invalidate()
        assert len(cache) == 0
        cache.solve(schema.full, 3, make_solver("ConsumeAttr"))
        assert cache.stats()["misses"] == 2


class _AlwaysFails(Solver):
    """A chain entry that crashes — the harness reports a failed attempt."""

    name = "AlwaysFails"
    optimal = False

    def _solve(self, problem):
        raise RuntimeError("boom")


class TestHarnessPath:
    def test_run_memoizes_outcomes(self, schema, log):
        cache = SolveCache(log)
        harness = SolverHarness(["ConsumeAttrCumul"])
        first = cache.run(schema.full, 3, harness)
        again = cache.run(schema.full, 3, harness)
        assert again is first
        assert first.status == "exact"
        assert cache.hits == 1

    def test_stale_while_revalidate_serves_last_known_good(self, schema, log):
        cache = SolveCache(log, stale_while_revalidate=True)
        good = SolverHarness(["ConsumeAttrCumul"])
        outcome = cache.run(schema.full, 3, good)
        assert outcome.status == "exact"
        log.append(0b1)  # invalidate; refresh below fails
        bad = SolverHarness([_AlwaysFails(), _AlwaysFails()])
        assert "/".join(bad.chain) == "/".join(["AlwaysFails", "AlwaysFails"])
        # distinct chain name: no last-known-good for it -> failed
        failed = cache.run(schema.full, 3, bad)
        assert failed.status == "failed" and failed.solution is None

    def test_stale_serving_same_chain(self, schema, log, monkeypatch):
        cache = SolveCache(log, stale_while_revalidate=True)
        harness = SolverHarness(["ConsumeAttrCumul"])
        good = cache.run(schema.full, 3, harness)
        assert good.solution is not None
        log.append(0b1)
        # same chain identity, but every run now fails
        from repro.runtime.harness import RunOutcome

        def always_fail(problem, deadline_ms=...):
            return RunOutcome(
                status="failed", solution=None, attempts=(),
                elapsed_s=0.0, deadline_s=None,
            )

        monkeypatch.setattr(harness, "run", always_fail)
        stale = cache.run(schema.full, 3, harness)
        assert stale.status == "stale"
        assert stale.solution is not None
        assert stale.solution.keep_mask == good.solution.keep_mask
        assert stale.solution.stats["stale"] is True
        # the objective is re-evaluated against the CURRENT window
        fresh_value = VisibilityProblem(
            log.snapshot(), schema.full, 3
        ).evaluate(stale.solution.keep_mask)
        assert stale.solution.satisfied == fresh_value
        assert cache.stale_serves == 1
        # served from cache on a repeat at the same epoch
        repeat = cache.run(schema.full, 3, harness)
        assert repeat is stale

    def test_no_stale_without_flag(self, schema, log, monkeypatch):
        cache = SolveCache(log)  # stale_while_revalidate off
        harness = SolverHarness(["ConsumeAttrCumul"])
        cache.run(schema.full, 3, harness)
        log.append(0b1)
        from repro.runtime.harness import RunOutcome

        monkeypatch.setattr(
            harness,
            "run",
            lambda problem, deadline_ms=...: RunOutcome(
                status="failed", solution=None, attempts=(),
                elapsed_s=0.0, deadline_s=None,
            ),
        )
        outcome = cache.run(schema.full, 3, harness)
        assert outcome.status == "failed"
        assert outcome.solution is None


class TestKeyNamespaces:
    def test_estimator_and_same_named_chain_do_not_collide(self, schema, log):
        """Regression: an estimator solve and a one-entry harness chain
        with the same algorithm name used to share a cache key, so the
        run() path could hand back a raw Solution instead of a
        RunOutcome."""
        cache = SolveCache(log)
        solution = cache.solve(schema.full, 3, make_solver("ConsumeAttr"))
        outcome = cache.run(schema.full, 3, SolverHarness(["ConsumeAttr"]))
        assert outcome.solution is not None
        assert outcome.status == "exact" or outcome.solution.keep_mask == solution.keep_mask
        assert hasattr(outcome, "attempts")  # a RunOutcome, not a Solution
