"""StreamingLog: sliding-window semantics, epochs, snapshot caching."""

from __future__ import annotations

import random

import pytest

from repro.booldata.index import VerticalIndex
from repro.booldata.schema import Schema
from repro.common.errors import ValidationError
from repro.stream.log import StreamingLog


@pytest.fixture
def schema() -> Schema:
    return Schema.anonymous(8)


class TestWindowSemantics:
    def test_append_within_window(self, schema):
        log = StreamingLog(schema, window_size=3)
        assert log.append(0b001) is None
        assert log.append(0b010) is None
        assert len(log) == 2
        assert log.rows == [0b001, 0b010]

    def test_append_beyond_window_evicts_oldest(self, schema):
        log = StreamingLog(schema, window_size=2, rows=[0b001, 0b010])
        assert log.append(0b100) == 0b001
        assert log.rows == [0b010, 0b100]

    def test_unbounded_log_never_evicts(self, schema):
        log = StreamingLog(schema)
        for value in range(50):
            assert log.append(value % 256) is None
        assert len(log) == 50

    def test_retire_is_fifo(self, schema):
        log = StreamingLog(schema, rows=[1, 2, 3, 4])
        assert log.retire(2) == [1, 2]
        assert log.rows == [3, 4]

    def test_retire_more_than_live_rejected(self, schema):
        log = StreamingLog(schema, rows=[1])
        with pytest.raises(ValidationError, match="cannot retire 2"):
            log.retire(2)

    def test_validation(self, schema):
        with pytest.raises(ValidationError, match="window_size"):
            StreamingLog(schema, window_size=0)
        with pytest.raises(ValidationError, match="compact_threshold"):
            StreamingLog(schema, compact_threshold=0.0)
        log = StreamingLog(schema)
        with pytest.raises(ValidationError):
            log.append(1 << schema.width)


class TestEpochs:
    def test_epoch_bumps_on_mutation(self, schema):
        log = StreamingLog(schema)
        assert log.epoch == 0
        log.append(0b1)
        assert log.epoch == 1
        log.retire(1)
        assert log.epoch == 2

    def test_compaction_preserves_epoch(self, schema):
        log = StreamingLog(schema, rows=[1, 2, 3, 4])
        log.retire(1)
        epoch = log.epoch
        rows = log.rows
        log.compact()
        assert log.epoch == epoch
        assert log.rows == rows

    def test_snapshot_cached_per_epoch(self, schema):
        log = StreamingLog(schema, rows=[0b11, 0b101])
        first = log.snapshot()
        assert log.snapshot() is first          # unchanged window: same object
        log.append(0b110)
        second = log.snapshot()
        assert second is not first
        assert second.rows == [0b11, 0b101, 0b110]
        assert first.rows == [0b11, 0b101]      # old snapshot is immutable

    def test_snapshot_carries_prebuilt_index(self, schema):
        log = StreamingLog(schema, rows=[0b11, 0b101])
        snapshot = log.snapshot()
        assert snapshot.cached_vertical_index is not None
        fresh = VerticalIndex(schema.width, snapshot.rows)
        assert snapshot.cached_vertical_index.columns == fresh.columns


class TestCompaction:
    def test_threshold_triggers_compaction(self, schema):
        log = StreamingLog(schema, window_size=4, compact_threshold=0.5)
        for value in range(12):
            log.append(value % 7 + 1)
        # slot space never exceeds the threshold for long
        assert log.compactions > 0
        assert log.index_answers().dead_fraction < 0.5

    def test_high_threshold_defers_compaction(self, schema):
        log = StreamingLog(schema, window_size=4, compact_threshold=1.0)
        for value in range(8):
            log.append(value + 1)
        assert log.compactions == 0


@pytest.mark.parametrize("width,window", [(4, 5), (8, 20), (16, 7), (33, 50)])
@pytest.mark.parametrize("seed", [0, 1])
def test_incremental_index_equals_rebuild(width, window, seed):
    """Property (ISSUE acceptance): after any randomized append/retire/
    compact sequence the maintained index is bit-for-bit identical to a
    fresh VerticalIndex over the same rows."""
    rng = random.Random(seed * 31 + width)
    schema = Schema.anonymous(width)
    log = StreamingLog(
        schema, window_size=window, compact_threshold=rng.choice([0.25, 0.5, 0.9])
    )
    mirror: list[int] = []
    for step in range(400):
        action = rng.random()
        if action < 0.7 or not mirror:
            row = rng.getrandbits(width)
            log.append(row)
            mirror.append(row)
            if len(mirror) > window:
                mirror.pop(0)
        elif action < 0.85:
            count = rng.randrange(1, min(3, len(mirror)) + 1)
            log.retire(count)
            del mirror[:count]
        else:
            log.compact()
        assert log.rows == mirror
        if step % 13 == 0:
            fresh = VerticalIndex(width, mirror)
            incremental = log.vertical_index()
            assert incremental.columns == fresh.columns
            assert incremental.all_rows == fresh.all_rows
            assert incremental.num_rows == fresh.num_rows
            probe = rng.getrandbits(width)
            assert incremental.satisfied_count(probe) == fresh.satisfied_count(probe)
            assert (
                incremental.attribute_frequencies() == fresh.attribute_frequencies()
            )
            assert incremental.cooccurrence_count(probe) == fresh.cooccurrence_count(
                probe
            )
    fresh = VerticalIndex(width, mirror)
    assert log.vertical_index().columns == fresh.columns
