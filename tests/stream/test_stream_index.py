"""DeltaVerticalIndex: incremental maintenance equals a fresh rebuild."""

from __future__ import annotations

import random

import pytest

from repro.booldata.index import VerticalIndex, merge_columns, shift_columns
from repro.common.errors import ValidationError
from repro.stream.index import DeltaVerticalIndex


def assert_matches_rebuild(delta: DeltaVerticalIndex, rows: list[int]) -> None:
    """Every answer — and the materialized representation — must equal a
    fresh VerticalIndex over the surviving rows."""
    fresh = VerticalIndex(delta.width, rows)
    live = delta.live_rows()
    assert delta.num_rows == fresh.num_rows
    assert live.bit_count() == len(rows)
    assert delta.attribute_frequencies() == fresh.attribute_frequencies()
    for probe in (0, 1, (1 << delta.width) - 1, 0b101 & ((1 << delta.width) - 1)):
        assert delta.satisfied_count(probe) == fresh.satisfied_count(probe)
        assert delta.cooccurrence_count(probe) == fresh.cooccurrence_count(probe)
        assert delta.disjoint_count(probe) == fresh.disjoint_count(probe)


class TestBasics:
    def test_append_then_query(self):
        index = DeltaVerticalIndex(4)
        for row in (0b0011, 0b0101, 0b1001):
            index.append(row)
        assert index.num_rows == 3
        assert index.column(0) == 0b111  # attribute 0 in every row
        assert index.attribute_frequencies() == [3, 1, 1, 1]

    def test_retire_masks_the_row_out(self):
        index = DeltaVerticalIndex(3, [0b011, 0b101, 0b110])
        index.retire(0)
        assert index.num_rows == 2
        assert index.attribute_frequencies() == [1, 1, 2]
        assert_matches_rebuild(index, [0b101, 0b110])

    def test_retire_pending_row_flushes_first(self):
        index = DeltaVerticalIndex(3)
        index.append(0b001)
        index.append(0b010)
        index.retire(1)  # still in the delta buffer
        assert index.num_rows == 1
        assert_matches_rebuild(index, [0b001])

    def test_double_retire_rejected(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010])
        index.retire(0)
        with pytest.raises(ValidationError, match="already retired"):
            index.retire(0)

    def test_out_of_range_rejected(self):
        index = DeltaVerticalIndex(3, [0b001])
        with pytest.raises(ValidationError, match="out of range"):
            index.retire(5)
        with pytest.raises(ValidationError, match="out of range"):
            index.append(0b1000)
        with pytest.raises(ValidationError, match="must be positive"):
            DeltaVerticalIndex(0)


class TestCompaction:
    def test_prefix_compaction_shifts(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010, 0b100, 0b011])
        index.retire(0)
        index.retire(1)
        assert index.slots == 4
        assert index.compact() == 2
        assert index.slots == 2
        assert index.tombstones == 0
        assert_matches_rebuild(index, [0b100, 0b011])

    def test_non_prefix_compaction_needs_survivors(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010, 0b100])
        index.retire(1)
        with pytest.raises(ValidationError, match="surviving rows"):
            index.compact()
        index.compact(survivors=[0b001, 0b100])
        assert_matches_rebuild(index, [0b001, 0b100])

    def test_survivor_count_checked(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010, 0b100])
        index.retire(1)
        with pytest.raises(ValidationError, match="expected 2 survivors"):
            index.compact(survivors=[0b001])

    def test_compact_without_tombstones_is_noop(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010])
        assert index.compact() == 2
        assert_matches_rebuild(index, [0b001, 0b010])


class TestMaterialize:
    def test_materialized_equals_rebuild_bit_for_bit(self):
        rows = [0b0110, 0b1010, 0b0001, 0b1111]
        index = DeltaVerticalIndex(4, rows)
        index.retire(0)
        materialized = index.materialize()
        fresh = VerticalIndex(4, rows[1:])
        assert materialized.columns == fresh.columns
        assert materialized.all_rows == fresh.all_rows
        assert materialized.num_rows == fresh.num_rows
        assert materialized.used_attributes == fresh.used_attributes

    def test_materialize_non_prefix_needs_survivors(self):
        index = DeltaVerticalIndex(3, [0b001, 0b010, 0b100])
        index.retire(1)
        with pytest.raises(ValidationError, match="surviving rows"):
            index.materialize()
        materialized = index.materialize(survivors=[0b001, 0b100])
        assert materialized.columns == VerticalIndex(3, [0b001, 0b100]).columns


class TestColumnHelpers:
    def test_merge_columns_offsets_rows(self):
        base = [0b01, 0b10]
        merge_columns(base, [0b1, 0b1], offset=2)
        assert base == [0b101, 0b110]

    def test_merge_columns_validates(self):
        with pytest.raises(ValidationError, match="non-negative"):
            merge_columns([0], [1], offset=-1)
        with pytest.raises(ValidationError, match="cannot merge"):
            merge_columns([0], [1, 1], offset=0)

    def test_shift_columns_drops_prefix(self):
        assert shift_columns([0b1101, 0b0110], 2) == [0b11, 0b01]
        with pytest.raises(ValidationError, match="non-negative"):
            shift_columns([0], -2)

    def test_from_columns_validates_bounds(self):
        with pytest.raises(ValidationError, match="beyond row"):
            VerticalIndex.from_columns(2, 1, [0b10, 0])
        with pytest.raises(ValidationError, match="expected 2 columns"):
            VerticalIndex.from_columns(2, 1, [0b1])


@pytest.mark.parametrize("width", [3, 8, 17, 40])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_mutations_match_rebuild(width, seed):
    """Property: after any FIFO-retire mutation sequence, with occasional
    compactions, every answer equals a fresh rebuild."""
    rng = random.Random(seed * 1000 + width)
    index = DeltaVerticalIndex(width)
    alive: list[int] = []
    head = 0
    for step in range(300):
        action = rng.random()
        if action < 0.6 or not alive:
            row = rng.getrandbits(width)
            index.append(row)
            alive.append(row)
        elif action < 0.9:
            index.retire(head)
            head += 1
            alive.pop(0)
        else:
            index.compact()
            head = 0
        if step % 23 == 0:
            assert_matches_rebuild(index, alive)
            materialized = index.materialize()
            assert materialized.columns == VerticalIndex(width, alive).columns
    assert_matches_rebuild(index, alive)
