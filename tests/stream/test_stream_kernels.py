"""Kernel equivalence under streaming mutation.

A :class:`~repro.stream.index.DeltaVerticalIndex` on any kernel must
agree with the pure-Python one — and with a fresh
:class:`~repro.booldata.index.VerticalIndex` rebuild — after arbitrary
append/retire/compact sequences, including the word-boundary row counts
the packed kernel is most sensitive to.
"""

import random

import pytest

from repro.booldata import kernels
from repro.booldata.index import VerticalIndex
from repro.stream.index import DeltaVerticalIndex
from repro.stream.log import StreamingLog
from repro.booldata.schema import Schema

CONCRETE = list(kernels.available_kernels())
FAST = [k for k in CONCRETE if k != "python"]


def drive(index: DeltaVerticalIndex, width: int, seed: int, steps: int):
    """Apply a seeded mutation sequence; returns the live rows in slot order."""
    rng = random.Random(seed)
    live: dict[int, int] = {}
    for _ in range(steps):
        action = rng.random()
        if action < 0.70 or not live:
            row = rng.randrange(1 << width)
            live[index.append(row)] = row
        elif action < 0.92:
            slot = rng.choice(list(live))
            index.retire(slot)
            del live[slot]
        else:
            survivors = [live[slot] for slot in sorted(live)]
            index.compact(survivors)
            live = dict(enumerate(survivors))
    return [live[slot] for slot in sorted(live)]


def snapshot(index, width: int, seed: int):
    rng = random.Random(seed)
    keeps = [rng.randrange(1 << width) for _ in range(6)]
    return {
        "rows": index.num_rows,
        "live": getattr(index, "live_rows", lambda: None)(),
        "satisfied": [index.satisfied_count(k) for k in keeps],
        "satisfied_rows": [index.satisfied_rows(k) for k in keeps],
        "cooccurring": [index.cooccurring_rows(k) for k in keeps],
        "disjoint": [index.disjoint_rows(k) for k in keeps],
        "frequencies": index.attribute_frequencies(),
    }


@pytest.mark.parametrize("kernel", FAST)
@pytest.mark.parametrize("width", [5, 64, 70])
@pytest.mark.parametrize("seed", [2, 19, 83])
def test_mutation_sequences_match_python_kernel(kernel, width, seed):
    reference = DeltaVerticalIndex(width, kernel="python")
    candidate = DeltaVerticalIndex(width, kernel=kernel)
    expected = drive(reference, width, seed, steps=180)
    survivors = drive(candidate, width, seed, steps=180)
    assert survivors == expected
    assert snapshot(candidate, width, seed) == snapshot(reference, width, seed)
    # materialization adopts the kernel's store without a round-trip and
    # is still bit-for-bit a rebuild
    materialized = candidate.materialize(survivors)
    assert materialized.kernel == kernel
    rebuild = VerticalIndex(width, survivors, kernel="python")
    assert materialized.columns == rebuild.columns


@pytest.mark.parametrize("kernel", CONCRETE)
@pytest.mark.parametrize("live", [63, 64, 65])
def test_word_boundary_windows(kernel, live):
    width = 64
    rng = random.Random(live)
    index = DeltaVerticalIndex(width, kernel=kernel)
    rows = [rng.randrange(1 << width) for _ in range(live + 40)]
    for row in rows:
        index.append(row)
    for slot in range(40):  # retire a prefix, then compact across a word edge
        index.retire(slot)
    index.compact()
    rebuild = VerticalIndex(width, rows[40:], kernel="python")
    assert index.materialize().columns == rebuild.columns
    assert index.satisfied_count(rows[40]) == rebuild.satisfied_count(rows[40])


@pytest.mark.parametrize("kernel", CONCRETE)
def test_retire_from_the_pending_buffer(kernel):
    index = DeltaVerticalIndex(8, kernel=kernel)
    slot = index.append(0b1011)
    index.append(0b0001)
    index.retire(slot)  # forces a flush before the tombstone lands
    assert index.num_rows == 1
    assert index.live_rows() == 0b10
    assert index.satisfied_rows(0b0001) == 0b10


@pytest.mark.parametrize("kernel", CONCRETE)
def test_streaming_log_rides_the_requested_kernel(kernel):
    log = StreamingLog(Schema.anonymous(16), window_size=8, kernel=kernel)
    assert log.kernel == kernel
    rng = random.Random(31)
    rows = [rng.randrange(1 << 16) for _ in range(30)]
    for row in rows:
        log.append(row)
    window = log.snapshot()
    assert window.rows == rows[-8:]
    index = window.cached_vertical_index
    assert index is not None and index.kernel == kernel
    rebuild = VerticalIndex(16, rows[-8:], kernel="python")
    assert index.columns == rebuild.columns


def test_auto_resolves_against_the_window_size(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_available", True)
    big = StreamingLog(
        Schema.anonymous(8), window_size=kernels.AUTO_NUMPY_MIN_ROWS
    )
    small = StreamingLog(Schema.anonymous(8), window_size=64)
    assert big.kernel == "numpy"
    assert small.kernel == "python"
